package hypersparse

// io.go provides a compact binary serialization of matrices, the
// interchange format the archive layer stores on disk (the paper's
// pipeline archives anonymized GraphBLAS matrices of 2^17-packet leaves
// and hierarchically sums them into analysis windows).
//
// Format (little endian):
//
//	magic   4 bytes 'G','B','M','1'
//	nrows   uint64
//	nnz     uint64
//	rows    nrows * uint32
//	rowPtr  (nrows+1) * int64   (omitted when nrows == 0)
//	cols    nnz * uint32
//	vals    nnz * float64
//	crc32   uint32 (IEEE, over the payload between magic and crc)

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

var gbmMagic = [4]byte{'G', 'B', 'M', '1'}

// Errors returned by ReadMatrix.
var (
	ErrBadFormat    = errors.New("hypersparse: not a GBM1 matrix stream")
	ErrCorrupt      = errors.New("hypersparse: matrix stream corrupt")
	ErrInconsistent = errors.New("hypersparse: matrix stream structurally inconsistent")
)

// payloadCRC hashes the payload arrays exactly as they are serialized.
func payloadCRC(m *Matrix) uint32 {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(crc, 1<<16)
	writePayload(bw, m)
	bw.Flush()
	return crc.Sum32()
}

func writePayload(w io.Writer, m *Matrix) error {
	// An empty matrix may carry either a nil or a single-element [0]
	// rowPtr depending on how it was built; serialize both as empty so
	// the wire form is canonical.
	rowPtr := m.rowPtr
	if len(m.rows) == 0 {
		rowPtr = nil
	}
	for _, v := range []any{
		uint64(len(m.rows)), uint64(len(m.cols)),
		m.rows, rowPtr, m.cols, m.vals,
	} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

// WriteTo serializes the matrix; it implements io.WriterTo.
func (m *Matrix) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	if _, err := bw.Write(gbmMagic[:]); err != nil {
		return cw.n, err
	}
	if err := writePayload(bw, m); err != nil {
		return cw.n, err
	}
	if err := binary.Write(bw, binary.LittleEndian, payloadCRC(m)); err != nil {
		return cw.n, err
	}
	err := bw.Flush()
	return cw.n, err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReadMatrix deserializes a matrix written by WriteTo, validating both
// the checksum and the DCSR structural invariants.
func ReadMatrix(r io.Reader) (*Matrix, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if magic != gbmMagic {
		return nil, ErrBadFormat
	}
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }
	var nrows, nnz uint64
	if err := read(&nrows); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	if err := read(&nnz); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	// Refuse absurd allocations from corrupted headers; a matrix cannot
	// have more occupied rows than entries.
	const maxEntries = 1 << 33
	if nrows > maxEntries || nnz > maxEntries || nrows > nnz {
		if !(nrows == 0 && nnz == 0) {
			return nil, ErrInconsistent
		}
	}
	m := &Matrix{}
	if nrows > 0 {
		m.rows = make([]uint32, nrows)
		m.rowPtr = make([]int64, nrows+1)
		m.cols = make([]uint32, nnz)
		m.vals = make([]float64, nnz)
		for _, v := range []any{m.rows, m.rowPtr, m.cols, m.vals} {
			if err := read(v); err != nil {
				return nil, fmt.Errorf("%w: body: %v", ErrCorrupt, err)
			}
		}
	}
	var stored uint32
	if err := read(&stored); err != nil {
		return nil, fmt.Errorf("%w: checksum: %v", ErrCorrupt, err)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	if payloadCRC(m) != stored {
		return nil, ErrCorrupt
	}
	return m, nil
}

// validate checks the DCSR structural invariants of a deserialized
// matrix: sorted distinct rows, monotone rowPtr bracketing the column
// array, and per-row sorted distinct columns.
func (m *Matrix) validate() error {
	if len(m.rows) == 0 {
		if len(m.cols) != 0 || len(m.vals) != 0 {
			return ErrInconsistent
		}
		return nil
	}
	if len(m.rowPtr) != len(m.rows)+1 {
		return ErrInconsistent
	}
	if m.rowPtr[0] != 0 || m.rowPtr[len(m.rows)] != int64(len(m.cols)) {
		return ErrInconsistent
	}
	for i := 1; i < len(m.rows); i++ {
		if m.rows[i-1] >= m.rows[i] {
			return ErrInconsistent
		}
	}
	for i := 0; i < len(m.rows); i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		if lo > hi || lo < 0 || hi > int64(len(m.cols)) {
			return ErrInconsistent
		}
		for k := lo + 1; k < hi; k++ {
			if m.cols[k-1] >= m.cols[k] {
				return ErrInconsistent
			}
		}
	}
	return nil
}
