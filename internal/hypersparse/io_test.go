package hypersparse

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixSerializationRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := FromEntries(randomEntries(rng, 500, 100, 100))
		var buf bytes.Buffer
		n, err := m.WriteTo(&buf)
		if err != nil || n != int64(buf.Len()) {
			return false
		}
		back, err := ReadMatrix(&buf)
		if err != nil {
			return false
		}
		return Equal(m, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEmptyMatrixRoundTrip(t *testing.T) {
	for _, m := range []*Matrix{{}, NewBuilder(0).Build()} {
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadMatrix(&buf)
		if err != nil {
			t.Fatalf("empty matrix round trip: %v", err)
		}
		if back.NNZ() != 0 || back.NRows() != 0 {
			t.Error("empty matrix came back non-empty")
		}
	}
}

func TestReadMatrixBadMagic(t *testing.T) {
	if _, err := ReadMatrix(bytes.NewReader([]byte("XXXX"))); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad magic error = %v", err)
	}
	if _, err := ReadMatrix(bytes.NewReader(nil)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("empty stream error = %v", err)
	}
}

func TestReadMatrixTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := FromEntries(randomEntries(rng, 200, 50, 50))
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 20, len(full) / 2, len(full) - 1} {
		if _, err := ReadMatrix(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestReadMatrixBitFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := FromEntries(randomEntries(rng, 300, 60, 60))
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Flip one bit in each region of the stream; every flip must be
	// detected (checksum or structural validation).
	detected := 0
	trials := 0
	for pos := 20; pos < len(full)-4; pos += len(full) / 17 {
		corrupted := append([]byte(nil), full...)
		corrupted[pos] ^= 0x10
		trials++
		if _, err := ReadMatrix(bytes.NewReader(corrupted)); err != nil {
			detected++
		}
	}
	if detected != trials {
		t.Errorf("only %d/%d bit flips detected", detected, trials)
	}
}

func TestReadMatrixRefusesAbsurdHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(gbmMagic[:])
	// nrows = 2^40, nnz = 2^40 — would allocate terabytes if trusted.
	buf.Write([]byte{0, 0, 0, 0, 0, 1, 0, 0})
	buf.Write([]byte{0, 0, 0, 0, 0, 1, 0, 0})
	if _, err := ReadMatrix(&buf); !errors.Is(err, ErrInconsistent) {
		t.Errorf("absurd header error = %v", err)
	}
}

func TestValidateRejectsBrokenStructures(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := FromEntries(randomEntries(rng, 100, 30, 30))
	breakers := []func(*Matrix){
		func(m *Matrix) { m.rows[0], m.rows[1] = m.rows[1], m.rows[0] }, // unsorted rows
		func(m *Matrix) { m.rowPtr[0] = 1 },                             // bad first offset
		func(m *Matrix) { m.rowPtr[len(m.rowPtr)-1]-- },                 // bad last offset
		func(m *Matrix) { // unsorted columns within a row with >= 2 entries
			for i := 0; i < len(m.rows); i++ {
				if m.rowPtr[i+1]-m.rowPtr[i] >= 2 {
					k := m.rowPtr[i]
					m.cols[k], m.cols[k+1] = m.cols[k+1], m.cols[k]
					return
				}
			}
		},
	}
	for i, br := range breakers {
		var buf bytes.Buffer
		if _, err := base.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		m, err := ReadMatrix(&buf)
		if err != nil {
			t.Fatal(err)
		}
		br(m)
		if err := m.validate(); err == nil {
			t.Errorf("breaker %d not caught by validate", i)
		}
	}
}

func BenchmarkMatrixWriteTo(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	m := FromEntries(randomEntries(rng, 1<<16, 1<<18, 1<<18))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatrixRead(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	m := FromEntries(randomEntries(rng, 1<<16, 1<<18, 1<<18))
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadMatrix(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}
