package hypersparse

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randomVector(rng *rand.Rand, n int, space uint32) *Vector {
	m := make(map[uint32]float64)
	for i := 0; i < n; i++ {
		m[rng.Uint32()%space] = float64(1 + rng.Intn(100))
	}
	return VectorFromMap(m)
}

func TestVectorFromMapSorted(t *testing.T) {
	v := VectorFromMap(map[uint32]float64{5: 1, 1: 2, 9: 3})
	ids := v.IDs()
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		t.Error("ids not sorted")
	}
	if v.At(1) != 2 || v.At(5) != 1 || v.At(9) != 3 || v.At(4) != 0 {
		t.Error("At returned wrong values")
	}
}

func TestNewVectorValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("length mismatch", func() { NewVector([]uint32{1}, nil) })
	mustPanic("unsorted", func() { NewVector([]uint32{2, 1}, []float64{1, 2}) })
	mustPanic("duplicate", func() { NewVector([]uint32{1, 1}, []float64{1, 2}) })
}

func TestVectorSumMax(t *testing.T) {
	v := VectorFromMap(map[uint32]float64{1: 3, 2: 10, 3: 7})
	if v.Sum() != 20 {
		t.Errorf("Sum = %g, want 20", v.Sum())
	}
	if v.Max() != 10 {
		t.Errorf("Max = %g, want 10", v.Max())
	}
	var empty Vector
	if empty.Sum() != 0 || empty.Max() != 0 || empty.NNZ() != 0 {
		t.Error("empty vector stats nonzero")
	}
}

func TestIntersectUnionAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomVector(rng, 200, 300)
		b := randomVector(rng, 200, 300)
		inter := a.Intersect(b)
		union := a.Union(b)

		setA := make(map[uint32]bool)
		for _, id := range a.IDs() {
			setA[id] = true
		}
		wantInter := 0
		for _, id := range b.IDs() {
			if setA[id] {
				wantInter++
			}
		}
		if len(inter) != wantInter {
			return false
		}
		// Inclusion-exclusion.
		if len(union) != a.NNZ()+b.NNZ()-len(inter) {
			return false
		}
		// Sorted outputs.
		return sort.SliceIsSorted(inter, func(i, j int) bool { return inter[i] < inter[j] }) &&
			sort.SliceIsSorted(union, func(i, j int) bool { return union[i] < union[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIntersectCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomVector(rng, 100, 150)
	b := randomVector(rng, 100, 150)
	x, y := a.Intersect(b), b.Intersect(a)
	if len(x) != len(y) {
		t.Fatal("intersection not commutative in size")
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("intersection not commutative in content")
		}
	}
}

func TestIntersectSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomVector(rng, 100, 150)
	self := a.Intersect(a)
	if len(self) != a.NNZ() {
		t.Errorf("self intersection has %d ids, want %d", len(self), a.NNZ())
	}
}

func TestIntersectEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomVector(rng, 100, 150)
	var empty Vector
	if len(a.Intersect(&empty)) != 0 || len(empty.Intersect(a)) != 0 {
		t.Error("intersection with empty vector not empty")
	}
	u := a.Union(&empty)
	if len(u) != a.NNZ() {
		t.Error("union with empty vector lost ids")
	}
}

func TestFilter(t *testing.T) {
	v := VectorFromMap(map[uint32]float64{1: 5, 2: 50, 3: 500})
	big := v.Filter(func(_ uint32, val float64) bool { return val >= 50 })
	if big.NNZ() != 2 || big.At(1) != 0 || big.At(2) != 50 {
		t.Errorf("Filter wrong: %v", big.IDs())
	}
}

func TestIterateEarlyStopVector(t *testing.T) {
	v := VectorFromMap(map[uint32]float64{1: 1, 2: 2, 3: 3})
	n := 0
	v.Iterate(func(uint32, float64) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("early stop visited %d, want 1", n)
	}
}

func TestHistogramBins(t *testing.T) {
	v := VectorFromMap(map[uint32]float64{1: 1, 2: 2, 3: 3, 4: 4, 5: 8, 6: 0.5})
	h := v.Histogram()
	// 1 -> bin0; 2,3 -> bin1; 4 -> bin2; 8 -> bin3; 0.5 skipped
	if h[0] != 1 || h[1] != 2 || h[2] != 1 || h[3] != 1 {
		t.Errorf("histogram = %v", h)
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 5 {
		t.Errorf("histogram total = %d, want 5", total)
	}
}
