package hypersparse

// stats.go implements the fused reductions of the paper's Table II: one
// row-major DCSR pass yields every row-axis and whole-matrix aggregate,
// and a pooled radix scan over the column ids yields the column-axis
// aggregates — no intermediate Vector, map, or per-call allocation.

import "sync"

// Stats bundles every aggregate of the paper's Table II computable from
// one matrix: 1^T A 1, the structural counts, and the per-axis maxima.
// netquant maps these onto the table's named quantities.
type Stats struct {
	Sum    float64 // 1^T A 1: total value (valid packets NV)
	MaxVal float64 // max(A): maximum link packets
	NNZ    int     // 1^T |A|0 1: stored entries (unique links)
	NRows  int     // unique sources
	NCols  int     // unique destinations

	MaxRowSum float64 // max(A 1): maximum source packets
	MaxRowDeg float64 // max(|A|0 1): maximum source fan-out
	MaxColSum float64 // max(1^T A): maximum destination packets
	MaxColDeg float64 // max(1^T |A|0): maximum destination fan-in
}

// Stats computes all Table II aggregates in one fused row-major pass
// plus one pooled column scan. Nothing is allocated once the column
// scratch pool is warm.
func (m *Matrix) Stats() Stats {
	s := Stats{NNZ: len(m.cols), NRows: len(m.rows)}
	for ri := range m.rows {
		lo, hi := m.rowPtr[ri], m.rowPtr[ri+1]
		var rowSum float64
		for k := lo; k < hi; k++ {
			v := m.vals[k]
			rowSum += v
			if v > s.MaxVal {
				s.MaxVal = v
			}
		}
		s.Sum += rowSum
		if rowSum > s.MaxRowSum {
			s.MaxRowSum = rowSum
		}
		if deg := float64(hi - lo); deg > s.MaxRowDeg {
			s.MaxRowDeg = deg
		}
	}
	m.ColScan(func(_ uint32, sum float64, nnz int) {
		s.NCols++
		if sum > s.MaxColSum {
			s.MaxColSum = sum
		}
		if d := float64(nnz); d > s.MaxColDeg {
			s.MaxColDeg = d
		}
	})
	return s
}

// RowScan calls fn once per non-empty row in increasing row order with
// the row's id, value total (its A·1 element), and stored-entry count
// (its |A|0·1 element). It allocates nothing.
func (m *Matrix) RowScan(fn func(row uint32, sum float64, nnz int)) {
	for ri, row := range m.rows {
		lo, hi := m.rowPtr[ri], m.rowPtr[ri+1]
		var sum float64
		for k := lo; k < hi; k++ {
			sum += m.vals[k]
		}
		fn(row, sum, int(hi-lo))
	}
}

// colScratch is the pooled buffer set ColScan sorts column ids into.
type colScratch struct {
	keys []uint32
	vals []float64
	kbuf []uint32
	vbuf []float64
}

var colPool = sync.Pool{New: func() interface{} { return new(colScratch) }}

// ColScan calls fn once per distinct column in increasing column order
// with the column's id, value total (its 1^T·A element), and
// stored-entry count (its 1^T·|A|0 element). The columns are coalesced
// with a pooled radix sort, so a warm pool makes the scan
// allocation-free; the deterministic ascending order also makes the
// float accumulation reproducible, unlike the map-based reduction it
// replaces.
func (m *Matrix) ColScan(fn func(col uint32, sum float64, nnz int)) {
	n := len(m.cols)
	if n == 0 {
		return
	}
	s := colPool.Get().(*colScratch)
	s.keys = growKeys(s.keys, n)
	s.vals = growVals(s.vals, n)
	s.kbuf = growKeys(s.kbuf, n)
	s.vbuf = growVals(s.vbuf, n)
	copy(s.keys, m.cols)
	copy(s.vals, m.vals)
	keys, vals := radixSortPairs(s.keys, s.vals, s.kbuf, s.vbuf)
	for i := 0; i < n; {
		col := keys[i]
		sum := vals[i]
		cnt := 1
		for i++; i < n && keys[i] == col; i++ {
			sum += vals[i]
			cnt++
		}
		fn(col, sum, cnt)
	}
	colPool.Put(s)
}
