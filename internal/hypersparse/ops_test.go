package hypersparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		ea := randomEntries(rng, 1000, 80, 80)
		eb := randomEntries(rng, 1000, 80, 80)
		got := Add(FromEntries(ea), FromEntries(eb))
		want := FromEntries(append(append([]Entry{}, ea...), eb...))
		if !Equal(got, want) {
			t.Fatalf("trial %d: Add disagrees with combined build", trial)
		}
	}
}

func TestAddIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := FromEntries(randomEntries(rng, 500, 64, 64))
	empty := &Matrix{}
	if !Equal(Add(m, empty), m) || !Equal(Add(empty, m), m) {
		t.Error("empty matrix is not an additive identity")
	}
}

func TestAddCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := FromEntries(randomEntries(rng, 300, 40, 40))
		b := FromEntries(randomEntries(rng, 300, 40, 40))
		return Equal(Add(a, b), Add(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAddAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := FromEntries(randomEntries(rng, 200, 32, 32))
		b := FromEntries(randomEntries(rng, 200, 32, 32))
		c := FromEntries(randomEntries(rng, 200, 32, 32))
		return Equal(Add(Add(a, b), c), Add(a, Add(b, c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPattern(t *testing.T) {
	m := FromEntries([]Entry{{1, 1, 7}, {1, 2, 3}, {5, 5, 100}})
	p := m.Pattern()
	if p.Sum() != 3 {
		t.Errorf("pattern sum = %g, want 3 (unique links)", p.Sum())
	}
	if p.At(5, 5) != 1 {
		t.Errorf("pattern value = %g, want 1", p.At(5, 5))
	}
	// original untouched
	if m.At(5, 5) != 100 {
		t.Error("Pattern mutated the source matrix")
	}
}

func TestReductionsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	es := randomEntries(rng, 3000, 100, 100)
	m := FromEntries(es)
	ref := refMap(es)

	rowSum := make(map[uint32]float64)
	rowDeg := make(map[uint32]float64)
	colSum := make(map[uint32]float64)
	colDeg := make(map[uint32]float64)
	var maxv float64
	for k, v := range ref {
		rowSum[k[0]] += v
		rowDeg[k[0]]++
		colSum[k[1]] += v
		colDeg[k[1]]++
		if v > maxv {
			maxv = v
		}
	}
	check := func(name string, got *Vector, want map[uint32]float64) {
		t.Helper()
		if got.NNZ() != len(want) {
			t.Fatalf("%s: NNZ=%d, want %d", name, got.NNZ(), len(want))
		}
		got.Iterate(func(id uint32, v float64) bool {
			if want[id] != v {
				t.Fatalf("%s[%d] = %g, want %g", name, id, v, want[id])
			}
			return true
		})
	}
	check("RowSums", m.RowSums(), rowSum)
	check("RowDegrees", m.RowDegrees(), rowDeg)
	check("ColSums", m.ColSums(), colSum)
	check("ColDegrees", m.ColDegrees(), colDeg)
	if m.MaxVal() != maxv {
		t.Errorf("MaxVal = %g, want %g", m.MaxVal(), maxv)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := FromEntries(randomEntries(rng, 400, 60, 60))
		return Equal(m, m.Transpose().Transpose())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestTransposeSwapsReductions(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := FromEntries(randomEntries(rng, 1000, 70, 70))
	mt := m.Transpose()
	rs, cs := m.RowSums(), mt.ColSums()
	if rs.NNZ() != cs.NNZ() {
		t.Fatal("transpose changed the number of sources")
	}
	rs.Iterate(func(id uint32, v float64) bool {
		if cs.At(id) != v {
			t.Fatalf("RowSums[%d]=%g but transpose ColSums=%g", id, v, cs.At(id))
		}
		return true
	})
}

// TestPermutationInvariance is the core anonymization guarantee: every
// Table II aggregate is unchanged when indices are relabeled by an
// injective map (such as CryptoPAN).
func TestPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := FromEntries(randomEntries(rng, 2000, 90, 90))
	// A fixed random permutation of the index space (injective on uint32).
	perm := func(x uint32) uint32 { return x*2654435761 + 12345 } // odd multiplier => bijection mod 2^32
	pm := m.PermuteFunc(perm)

	if pm.Sum() != m.Sum() {
		t.Errorf("valid packets changed: %g vs %g", pm.Sum(), m.Sum())
	}
	if pm.NNZ() != m.NNZ() {
		t.Errorf("unique links changed: %d vs %d", pm.NNZ(), m.NNZ())
	}
	if pm.NRows() != m.NRows() {
		t.Errorf("unique sources changed: %d vs %d", pm.NRows(), m.NRows())
	}
	if pm.MaxVal() != m.MaxVal() {
		t.Errorf("max link packets changed: %g vs %g", pm.MaxVal(), m.MaxVal())
	}
	if pm.RowSums().Max() != m.RowSums().Max() {
		t.Errorf("max source packets changed")
	}
	if pm.RowDegrees().Max() != m.RowDegrees().Max() {
		t.Errorf("max fan-out changed")
	}
	if pm.ColDegrees().Max() != m.ColDegrees().Max() {
		t.Errorf("max fan-in changed")
	}
	// The multiset of row sums is preserved, not just the max.
	hg1 := m.RowSums().Histogram()
	hg2 := pm.RowSums().Histogram()
	if len(hg1) != len(hg2) {
		t.Fatal("row-sum histogram changed size under permutation")
	}
	for k, v := range hg1 {
		if hg2[k] != v {
			t.Errorf("row-sum histogram bin %d: %d vs %d", k, v, hg2[k])
		}
	}
}

func TestSelectRows(t *testing.T) {
	m := FromEntries([]Entry{{1, 1, 1}, {2, 1, 2}, {3, 1, 3}, {4, 1, 4}})
	even := m.SelectRows(func(r uint32) bool { return r%2 == 0 })
	if even.NRows() != 2 || even.Sum() != 6 {
		t.Errorf("SelectRows even: NRows=%d Sum=%g, want 2, 6", even.NRows(), even.Sum())
	}
	none := m.SelectRows(func(uint32) bool { return false })
	if none.NNZ() != 0 {
		t.Error("SelectRows(false) not empty")
	}
	all := m.SelectRows(func(uint32) bool { return true })
	if !Equal(all, m) {
		t.Error("SelectRows(true) != original")
	}
}

func TestEqual(t *testing.T) {
	a := FromEntries([]Entry{{1, 2, 3}})
	b := FromEntries([]Entry{{1, 2, 3}})
	c := FromEntries([]Entry{{1, 2, 4}})
	d := FromEntries([]Entry{{2, 2, 3}})
	if !Equal(a, b) {
		t.Error("identical matrices not Equal")
	}
	if Equal(a, c) || Equal(a, d) {
		t.Error("different matrices Equal")
	}
}
