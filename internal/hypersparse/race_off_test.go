//go:build !race

package hypersparse

const raceEnabled = false
