package hypersparse

import (
	"math/rand"
	"testing"
	"time"
)

// hotpath_test.go pins the zero-allocation hot path: differential
// property tests of the radix builder and pooled k-way merges against
// the retained map-builder oracle, AllocsPerRun regression gates, the
// pooled-buffer escape test, and the >= 2x window-build speedup gate the
// PR's performance claim rests on.

// refBuild compiles entries through the retained map-based oracle.
func refBuild(es []Entry) *Matrix {
	b := newMapBuilder(len(es))
	for _, e := range es {
		b.add(e.Row, e.Col, e.Val)
	}
	return b.build()
}

// refAddTree sums leaves with the pre-refactor strategy: a binary merge
// tree where every level allocates fresh DCSR arrays via Add.
func refAddTree(leaves []*Matrix) *Matrix {
	cur := make([]*Matrix, 0, len(leaves))
	for _, l := range leaves {
		if l != nil && l.NNZ() > 0 {
			cur = append(cur, l)
		}
	}
	if len(cur) == 0 {
		return &Matrix{}
	}
	for len(cur) > 1 {
		next := cur[:0:0]
		for i := 0; i < len(cur); i += 2 {
			if i+1 == len(cur) {
				next = append(next, cur[i])
			} else {
				next = append(next, Add(cur[i], cur[i+1]))
			}
		}
		cur = next
	}
	return cur[0]
}

// windowEntries synthesizes leaf entry sets shaped like telescope
// traffic: heavy-tailed sources over the full 2^32 space, destinations
// inside one /8.
func windowEntries(seed int64, leaves, perLeaf int) [][]Entry {
	rng := rand.New(rand.NewSource(seed))
	hot := make([]uint32, 64) // heavy-tailed repeat sources
	for i := range hot {
		hot[i] = rng.Uint32()
	}
	out := make([][]Entry, leaves)
	for l := range out {
		es := make([]Entry, perLeaf)
		for i := range es {
			row := rng.Uint32()
			if rng.Intn(4) != 0 { // 3/4 of packets from hot sources
				row = hot[rng.Intn(len(hot))]
			}
			es[i] = Entry{
				Row: row,
				Col: 0x2C000000 | rng.Uint32()&0x00FFFFFF,
				Val: 1,
			}
		}
		out[l] = es
	}
	return out
}

func TestRadixBuilderMatchesMapOracle(t *testing.T) {
	cases := []struct {
		name    string
		entries []Entry
	}{
		{"empty", nil},
		{"single", []Entry{{5, 6, 2}}},
		{"one-row-many-cols", func() []Entry {
			es := make([]Entry, 300)
			for i := range es {
				es[i] = Entry{Row: 9, Col: uint32(i * 7 % 100), Val: float64(i%3 + 1)}
			}
			return es
		}()},
		{"extreme-ids", []Entry{
			{0, 0, 1}, {0xFFFFFFFF, 0xFFFFFFFF, 2}, {0, 0xFFFFFFFF, 3},
			{0xFFFFFFFF, 0, 4}, {0, 0, 5},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := FromEntries(tc.entries)
			want := refBuild(tc.entries)
			if !Equal(got, want) {
				t.Fatalf("radix build diverges from oracle:\n got %v\nwant %v", got, want)
			}
		})
	}
	// Fuzzed shapes: vary density, id ranges, duplicate rates.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(3000)
		rowSpace := uint32(1 + rng.Intn(1<<uint(rng.Intn(32))))
		colSpace := uint32(1 + rng.Intn(1<<uint(rng.Intn(32))))
		es := make([]Entry, n)
		for i := range es {
			es[i] = Entry{
				Row: rng.Uint32() % rowSpace,
				Col: rng.Uint32() % colSpace,
				Val: float64(1 + rng.Intn(9)),
			}
		}
		got, want := FromEntries(es), refBuild(es)
		if !Equal(got, want) {
			t.Fatalf("trial %d (n=%d rows<%d cols<%d): radix build diverges from oracle",
				trial, n, rowSpace, colSpace)
		}
	}
}

func TestBuilderReuseProducesIdenticalMatrices(t *testing.T) {
	// One retained builder vs a fresh builder per leaf: identical output.
	b := NewBuilder(0)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		es := randomEntries(rng, 500, 1000, 1000)
		for _, e := range es {
			b.Add(e.Row, e.Col, e.Val)
		}
		got := b.Build()
		if !Equal(got, FromEntries(es)) {
			t.Fatalf("trial %d: reused builder diverges from fresh builder", trial)
		}
	}
}

func TestSumIntoMatchesAddTree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		k := 1 + rng.Intn(40)
		leaves := make([]*Matrix, k)
		for i := range leaves {
			if rng.Intn(8) == 0 {
				leaves[i] = &Matrix{} // sprinkle empties
				continue
			}
			leaves[i] = FromEntries(randomEntries(rng, 1+rng.Intn(400), 300, 300))
		}
		want := refAddTree(leaves)
		var dst Matrix
		SumInto(&dst, leaves...)
		if !Equal(&dst, want) {
			t.Fatalf("trial %d (k=%d): SumInto diverges from Add tree", trial, k)
		}
		for _, workers := range []int{1, 2, 8} {
			if got := HierSum(leaves, workers); !Equal(got, want) {
				t.Fatalf("trial %d (k=%d, workers=%d): HierSum diverges from Add tree", trial, k, workers)
			}
		}
	}
}

func TestAddIntoMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var dst Matrix
	for trial := 0; trial < 30; trial++ {
		a := FromEntries(randomEntries(rng, rng.Intn(500), 200, 200))
		b := FromEntries(randomEntries(rng, rng.Intn(500), 200, 200))
		want := Add(a, b)
		if AddInto(&dst, a, b); !Equal(&dst, want) {
			t.Fatalf("trial %d: AddInto diverges from Add", trial)
		}
	}
	// Empty-operand behavior: AddInto copies, Add aliases.
	a := FromEntries([]Entry{{1, 2, 3}})
	empty := &Matrix{}
	if got := Add(a, empty); got != a {
		t.Error("Add(a, empty) must return a itself (documented aliasing)")
	}
	if got := Add(empty, a); got != a {
		t.Error("Add(empty, a) must return a itself (documented aliasing)")
	}
	AddInto(&dst, a, empty)
	if &dst.cols[0] == &a.cols[0] {
		t.Error("AddInto must copy, never alias its operands")
	}
	if !Equal(&dst, a) {
		t.Error("AddInto(dst, a, empty) != a")
	}
}

func TestAddIntoPanicsOnAliasedDst(t *testing.T) {
	a := FromEntries([]Entry{{1, 2, 3}})
	b := FromEntries([]Entry{{4, 5, 6}})
	for _, f := range []func(){
		func() { AddInto(a, a, b) },
		func() { AddInto(b, a, b) },
		func() { SumInto(a, b, a) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("aliased destination did not panic")
				}
			}()
			f()
		}()
	}
}

// TestPooledScratchNeverEscapes drives the pooled merge path hard and
// verifies earlier results are never corrupted by later pool reuse: the
// published matrices must not share storage with pooled scratch, and the
// single-leaf aliasing shortcut must return the (immutable) leaf, never
// a pooled buffer.
func TestPooledScratchNeverEscapes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	type snap struct {
		m    *Matrix
		want []Entry
	}
	var snaps []snap
	for trial := 0; trial < 30; trial++ {
		k := 2 + rng.Intn(20)
		leaves := make([]*Matrix, k)
		for i := range leaves {
			leaves[i] = FromEntries(randomEntries(rng, 1+rng.Intn(200), 100, 100))
		}
		m := HierSum(leaves, 1+rng.Intn(4))
		snaps = append(snaps, snap{m: m, want: m.Entries()})
	}
	// Churn the pool: every merge here reuses the scratch the snapshots'
	// merges used. If a pooled buffer escaped, a snapshot changes.
	for trial := 0; trial < 50; trial++ {
		leaves := make([]*Matrix, 16)
		for i := range leaves {
			leaves[i] = FromEntries(randomEntries(rng, 200, 100, 100))
		}
		HierSum(leaves, 2)
	}
	for i, s := range snaps {
		got := s.m.Entries()
		if len(got) != len(s.want) {
			t.Fatalf("snapshot %d: NNZ changed after pool churn", i)
		}
		for j := range got {
			if got[j] != s.want[j] {
				t.Fatalf("snapshot %d: entry %d changed after pool churn: %v -> %v",
					i, j, s.want[j], got[j])
			}
		}
	}
	// The one-leaf shortcut must return the leaf itself, not scratch.
	leaf := FromEntries([]Entry{{1, 2, 3}})
	if got := HierSum([]*Matrix{nil, {}, leaf}, 4); got != leaf {
		t.Error("single-leaf HierSum must return the leaf (documented aliasing)")
	}
}

func TestStatsMatchesSeparateReductions(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		m := FromEntries(randomEntries(rng, rng.Intn(2000), 500, 500))
		s := m.Stats()
		rowSums, rowDegs := m.RowSums(), m.RowDegrees()
		colSums, colDegs := m.ColSums(), m.ColDegrees()
		checks := []struct {
			name      string
			got, want float64
		}{
			{"Sum", s.Sum, m.Sum()},
			{"MaxVal", s.MaxVal, m.MaxVal()},
			{"NNZ", float64(s.NNZ), float64(m.NNZ())},
			{"NRows", float64(s.NRows), float64(m.NRows())},
			{"NCols", float64(s.NCols), float64(colSums.NNZ())},
			{"MaxRowSum", s.MaxRowSum, rowSums.Max()},
			{"MaxRowDeg", s.MaxRowDeg, rowDegs.Max()},
			{"MaxColSum", s.MaxColSum, colSums.Max()},
			{"MaxColDeg", s.MaxColDeg, colDegs.Max()},
		}
		for _, c := range checks {
			if c.got != c.want {
				t.Fatalf("trial %d: Stats.%s = %g, reduction says %g", trial, c.name, c.got, c.want)
			}
		}
	}
}

func TestColScanMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		es := randomEntries(rng, rng.Intn(1500), 400, 400)
		m := FromEntries(es)
		sums := map[uint32]float64{}
		cnts := map[uint32]int{}
		for _, e := range m.Entries() {
			sums[e.Col] += e.Val
			cnts[e.Col]++
		}
		var lastCol uint32
		seen := 0
		m.ColScan(func(col uint32, sum float64, nnz int) {
			if seen > 0 && col <= lastCol {
				t.Fatalf("trial %d: ColScan order violated: %d after %d", trial, col, lastCol)
			}
			lastCol = col
			seen++
			if sum != sums[col] || nnz != cnts[col] {
				t.Fatalf("trial %d: ColScan(%d) = (%g, %d), want (%g, %d)",
					trial, col, sum, nnz, sums[col], cnts[col])
			}
		})
		if seen != len(sums) {
			t.Fatalf("trial %d: ColScan visited %d cols, want %d", trial, seen, len(sums))
		}
	}
}

// allocGates are the steady-state allocation budgets of the hot path.
// Leaf build allocates exactly the published matrix (5 objects); the
// warm merge and reduction paths allocate nothing.
func TestSteadyStateAllocGates(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed by the race detector")
	}
	es := windowEntries(5, 4, 4096)
	b := NewBuilder(len(es[0]))
	leafBuild := func() {
		for _, e := range es[0] {
			b.Add(e.Row, e.Col, e.Val)
		}
		b.Build()
	}
	leafBuild() // warm the builder's buffers
	if got := testing.AllocsPerRun(20, leafBuild); got > 8 {
		t.Errorf("steady-state leaf build: %.1f allocs/op, gate is 8", got)
	}

	leaves := make([]*Matrix, len(es))
	for i, e := range es {
		leaves[i] = FromEntries(e)
	}
	var dst Matrix
	AddInto(&dst, leaves[0], leaves[1]) // warm dst
	if got := testing.AllocsPerRun(20, func() {
		AddInto(&dst, leaves[0], leaves[1])
	}); got > 0 {
		t.Errorf("warm AddInto: %.1f allocs/op, gate is 0", got)
	}
	SumInto(&dst, leaves...) // warm dst for the k-way shape
	if got := testing.AllocsPerRun(20, func() {
		SumInto(&dst, leaves...)
	}); got > 0 {
		t.Errorf("warm SumInto: %.1f allocs/op, gate is 0", got)
	}

	w := HierSum(leaves, 1)
	if got := testing.AllocsPerRun(20, func() {
		HierSum(leaves, 1)
	}); got > 8 {
		t.Errorf("steady-state serial HierSum: %.1f allocs/op, gate is 8 (publish only)", got)
	}

	w.Stats() // warm the column-scan pool
	if got := testing.AllocsPerRun(20, func() {
		w.Stats()
	}); got > 0 {
		t.Errorf("warm fused Stats: %.1f allocs/op, gate is 0", got)
	}
}

// TestWindowBuildSpeedup is the checked performance gate: the radix
// builder + pooled k-way merge window build must be at least 2x the
// retained reference path (map builder + allocate-per-level Add tree) on
// identical window-shaped input. This is the in-process, same-machine
// form of the "BenchmarkEngineWindow >= 2x seed" acceptance bar: it
// isolates exactly the code this PR rewrote, with anonymization and
// stream synthesis (unchanged algorithms) factored out.
func TestWindowBuildSpeedup(t *testing.T) {
	if raceEnabled {
		t.Skip("relative timings are not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	es := windowEntries(17, 16, 4096)

	reference := func() *Matrix {
		leaves := make([]*Matrix, len(es))
		for i, entries := range es {
			b := newMapBuilder(len(entries))
			for _, e := range entries {
				b.add(e.Row, e.Col, e.Val)
			}
			leaves[i] = b.build()
		}
		return refAddTree(leaves)
	}
	b := NewBuilder(len(es[0]))
	leaves := make([]*Matrix, len(es))
	hot := func() *Matrix {
		for i, entries := range es {
			for _, e := range entries {
				b.Add(e.Row, e.Col, e.Val)
			}
			leaves[i] = b.Build()
		}
		return HierSum(leaves, 1)
	}

	if !Equal(reference(), hot()) {
		t.Fatal("hot path and reference path disagree on the window matrix")
	}

	best := func(f func() *Matrix) time.Duration {
		min := time.Duration(1<<63 - 1)
		for i := 0; i < 6; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < min {
				min = d
			}
		}
		return min
	}
	hot() // warm pools and builder before timing
	refTime := best(reference)
	hotTime := best(hot)
	ratio := float64(refTime) / float64(hotTime)
	t.Logf("window build: reference %v, hot path %v, speedup %.2fx", refTime, hotTime, ratio)
	if ratio < 2 {
		t.Errorf("hot-path speedup %.2fx < 2x gate (reference %v, hot %v)", ratio, refTime, hotTime)
	}
}
