package repro

// integration_test.go exercises the full cross-module chain at the wire
// level, independent of the core pipeline's orchestration: radiation
// packets are serialized to a real pcap byte stream, read back, filtered
// and windowed by the telescope, reduced through anonymized hypersparse
// matrices into D4M tables, and correlated against honeyfarm months. It
// is the end-to-end proof that every boundary in the architecture
// diagram actually composes.

import (
	"bytes"
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/correlate"
	"repro/internal/honeyfarm"
	"repro/internal/netquant"
	"repro/internal/pcap"
	"repro/internal/radiation"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/telescope"
)

// TestScenarioSuite runs the complete YAML scenario zoo under
// scenarios/ as Go subtests: the same files, runner, and assertions
// the cmd/scenarios CLI checks, here under `go test` (and -race in
// CI). A failing subtest names the scenario and the assertion that
// did not hold.
func TestScenarioSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario zoo")
	}
	scenario.RunDir(t, "scenarios")
}

// TestE2ECasesAudit pins docs/e2e-cases.md to reality: every `done`
// row must name its coverage, and the Z-table must match the shipped
// scenario files one-to-one (same drift check as `scenarios -audit`).
func TestE2ECasesAudit(t *testing.T) {
	scs, err := scenario.LoadDir("scenarios")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := scenario.Audit("docs/e2e-cases.md", scs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s: %s", f.Case, f.Problem)
	}
}

func TestEndToEndWireLevel(t *testing.T) {
	cfg := radiation.DefaultConfig()
	cfg.NumSources = 8000
	cfg.ZM = stats.PaperZM(1 << 12)
	cfg.BrightLog2 = 7
	pop, err := radiation.NewPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// --- Telescope side: packets -> pcap bytes -> reader -> window ---
	snapMonth := 4.5
	snapTime := time.Date(2020, 6, 17, 12, 0, 0, 0, time.UTC)
	var wire bytes.Buffer
	pw, err := pcap.NewWriter(&wire)
	if err != nil {
		t.Fatal(err)
	}
	st := pop.TelescopeStream(snapMonth, snapTime)
	var pkt pcap.Packet
	for st.Next(&pkt) {
		if err := pw.WritePacket(&pkt); err != nil {
			t.Fatal(err)
		}
	}
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	t.Logf("pcap stream: %d packets, %d bytes", pw.Count(), wire.Len())

	pr, err := pcap.NewReader(bytes.NewReader(wire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	const nv = 1 << 14
	tel := telescope.New(cfg.Darkspace, "integration-key", telescope.WithLeafSize(1<<10))
	win, err := tel.CaptureWindow(&telescope.ReaderSource{R: pr}, nv)
	if err != nil {
		t.Fatal(err)
	}
	if win.NV != nv {
		t.Fatalf("window NV = %d, want %d (stream only had %d packets)", win.NV, nv, pw.Count())
	}

	// Table II on the anonymized matrix.
	q := netquant.Compute(win.Matrix)
	if q.ValidPackets != nv {
		t.Fatalf("valid packets = %g", q.ValidPackets)
	}
	if q.UniqueSources < 100 {
		t.Fatalf("implausibly few sources: %g", q.UniqueSources)
	}

	// Figure 3 on the window.
	alpha, _, _ := stats.FitZipfMandelbrot(netquant.SourcePacketDistribution(win.Matrix), nv)
	if alpha < 1.2 || alpha > 2.4 {
		t.Errorf("window ZM alpha = %g, outside the power-law regime", alpha)
	}

	// --- Honeyfarm side: 15 months of enriched tables ---
	farm := honeyfarm.New(120, 99)
	study := correlate.Study{}
	base := time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)
	for m := 0; m < cfg.Months; m++ {
		ms := base.AddDate(0, m, 0)
		label := ms.Format("2006-01")
		mw := farm.IngestMonth(label, ms, pop.HoneyfarmMonth(m, ms))
		study.Months = append(study.Months, correlate.MonthData{Label: label, Month: m, Table: mw.Table})
	}

	// --- Correlation: telescope D4M table vs honeyfarm months ---
	snap := correlate.Snapshot{
		Label:   "integration",
		Month:   snapMonth,
		NV:      nv,
		Sources: tel.SourceTable(win),
	}
	study.Snapshots = []correlate.Snapshot{snap}

	month, err := correlate.SameMonth(snap, study.Months)
	if err != nil {
		t.Fatal(err)
	}
	peak := correlate.PeakCorrelation(snap, month)
	if len(peak) < 5 {
		t.Fatalf("only %d brightness bands", len(peak))
	}
	// Bright bands beat faint bands (the Figure 4 trend), compared over
	// well-populated bands only.
	var faint, bright []float64
	for _, p := range peak {
		if p.Sources < 20 {
			continue
		}
		if float64(p.Band) < cfg.BrightLog2/2 {
			faint = append(faint, p.Fraction)
		} else {
			bright = append(bright, p.Fraction)
		}
	}
	if len(faint) > 0 && len(bright) > 0 {
		if stats.Summarize(bright).Mean <= stats.Summarize(faint).Mean {
			t.Errorf("bright bands (%v) do not exceed faint bands (%v)", bright, faint)
		}
	}

	// Temporal correlation + modified-Cauchy fit on a mid band.
	series, err := correlate.TemporalCorrelation(snap, study.Months, 4)
	if err != nil {
		t.Fatal(err)
	}
	fit := series.Fit()
	mc := fit.Model.(stats.ModifiedCauchy)
	if mc.Alpha <= 0 || mc.Beta <= 0 {
		t.Fatalf("degenerate fit: %+v", mc)
	}
	// The curve must actually decay: the near-peak mean exceeds the far
	// tail mean.
	var near, far []float64
	for i, dt := range series.Dt {
		if math.Abs(dt) <= 1.5 {
			near = append(near, series.Fraction[i])
		} else if math.Abs(dt) >= 5 {
			far = append(far, series.Fraction[i])
		}
	}
	if stats.Summarize(near).Mean <= stats.Summarize(far).Mean {
		t.Errorf("no temporal decay: near %v vs far %v", near, far)
	}

	// Wilson intervals behave.
	lo, hi := series.WilsonBand()
	for i := range lo {
		if lo[i] > series.Fraction[i] || hi[i] < series.Fraction[i] {
			t.Fatalf("CI %d excludes the estimate", i)
		}
	}
}

// TestEndToEndParallelCaptureAgreesOnTables verifies the parallel and
// serial capture paths feed identical D4M tables into the correlation
// stage.
func TestEndToEndParallelCaptureAgreesOnTables(t *testing.T) {
	cfg := radiation.DefaultConfig()
	cfg.NumSources = 3000
	cfg.ZM = stats.PaperZM(1 << 10)
	pop, err := radiation.NewPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const nv = 4096
	mkTable := func(parallel bool) map[string]float64 {
		tel := telescope.New(cfg.Darkspace, "agree-key")
		var win *telescope.Window
		var err error
		if parallel {
			win, err = tel.CaptureWindowEngine(context.Background(), pop.TelescopeStream(3, time.Unix(0, 0)), nv, 4, 0)
		} else {
			win, err = tel.CaptureWindow(pop.TelescopeStream(3, time.Unix(0, 0)), nv)
		}
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]float64)
		table := tel.SourceTable(win)
		for _, row := range table.RowKeys() {
			v, _ := table.Get(row, "packets")
			out[row] = v.Num
		}
		return out
	}
	serial, parallel := mkTable(false), mkTable(true)
	if len(serial) != len(parallel) {
		t.Fatalf("table sizes differ: %d vs %d", len(serial), len(parallel))
	}
	for k, v := range serial {
		if parallel[k] != v {
			t.Fatalf("row %s differs: %g vs %g", k, v, parallel[k])
		}
	}
}
