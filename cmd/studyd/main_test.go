package main

// main_test.go drives the built studyd binary end to end, mirroring
// the cmd/scenarios subprocess pattern: start it on an ephemeral port,
// grow the study over the ingest API while 8 concurrent clients poll
// an artifact, check the served bytes against an in-process batch run
// of the same inputs, then SIGTERM with an ingest in flight and
// require a clean drain (exit 0, the in-flight request answered).

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/report"
)

var (
	binOnce sync.Once
	binPath string
	binErr  error
)

// binary builds cmd/studyd once per test run.
func binary(t *testing.T) string {
	t.Helper()
	binOnce.Do(func() {
		dir, err := os.MkdirTemp("", "studyd-bin")
		if err != nil {
			binErr = err
			return
		}
		binPath = filepath.Join(dir, "studyd")
		out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
		if err != nil {
			binErr = err
			binPath = string(out)
		}
	})
	if binErr != nil {
		t.Fatalf("building studyd binary: %v\n%s", binErr, binPath)
	}
	return binPath
}

// e2eConfig mirrors the flags the subprocess gets; the in-process
// batch oracle must run the identical study.
func e2eConfig() core.Config {
	cfg := core.QuickConfig()
	cfg.NV = 1 << 12
	cfg.Radiation.NumSources = 3000
	cfg.Radiation.Months = 9
	cfg.SnapshotTimes = cfg.SnapshotTimes[:2] // June + July, inside 9 months
	return cfg
}

// startDaemon launches the binary and returns its base URL once the
// listen line appears on stderr; stderr keeps draining into buf.
func startDaemon(t *testing.T, args ...string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(binary(t), args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	var buf bytes.Buffer
	var bufMu sync.Mutex
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			bufMu.Lock()
			buf.WriteString(line + "\n")
			bufMu.Unlock()
			if i := strings.Index(line, "studyd listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("studyd listening on "):]):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, "http://" + addr, &buf
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("studyd never printed its listen line; stderr:\n%s", buf.String())
		return nil, "", nil
	}
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

func httpPost(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives a full incremental study")
	}
	cfg := e2eConfig()
	cmd, base, stderrBuf := startDaemon(t,
		"-listen", "127.0.0.1:0", "-scale", "quick",
		"-nv", "4096", "-sources", "3000", "-months", "9")
	defer cmd.Process.Kill() // no-op after a clean Wait

	// 8 concurrent pollers ride /artifacts/table2 through the whole
	// ingest phase: before the first snapshot lands they see 200 with
	// an empty table; afterwards 200 with rows. Anything else fails.
	stop := make(chan struct{})
	var pollers sync.WaitGroup
	for i := 0; i < 8; i++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(base + "/artifacts/table2?format=tsv")
				if err != nil {
					t.Errorf("poller: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("poller: /artifacts/table2 = %d", resp.StatusCode)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	// Grow the study to the oracle's exact inputs.
	for m := 0; m < cfg.Radiation.Months; m++ {
		if code, body := httpPost(t, base+"/ingest/month", fmt.Sprintf(`{"month": %d}`, m)); code != 200 {
			t.Fatalf("ingest month %d: %d %s", m, code, body)
		}
	}
	for _, ts := range cfg.SnapshotTimes {
		if code, body := httpPost(t, base+"/ingest/snapshot",
			fmt.Sprintf(`{"time": %q}`, ts.Format(time.RFC3339))); code != 200 {
			t.Fatalf("ingest snapshot %v: %d %s", ts, code, body)
		}
	}
	close(stop)
	pollers.Wait()

	// Parity: every artifact the daemon serves must be byte-identical
	// to a from-scratch batch run of the same study.
	p, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	g := res.Report()
	for _, id := range report.All() {
		var tsv, js bytes.Buffer
		if err := report.WriteTSV(&tsv, g, id); err != nil {
			t.Fatalf("batch %s: %v", id, err)
		}
		if err := report.WriteJSON(&js, g, id); err != nil {
			t.Fatalf("batch %s: %v", id, err)
		}
		if code, body := httpGet(t, fmt.Sprintf("%s/artifacts/%s?format=tsv", base, id)); code != 200 {
			t.Errorf("%s tsv: %d", id, code)
		} else if !bytes.Equal(body, tsv.Bytes()) {
			t.Errorf("%s: served TSV diverges from batch oracle", id)
		}
		if code, body := httpGet(t, fmt.Sprintf("%s/artifacts/%s", base, id)); code != 200 {
			t.Errorf("%s json: %d", id, code)
		} else if !bytes.Equal(body, js.Bytes()) {
			t.Errorf("%s: served JSON diverges from batch oracle", id)
		}
	}

	// SIGTERM with an ingest mid-recompute: fire a third snapshot
	// (September, inside the 9-month study) and signal immediately.
	// The drain contract: the in-flight ingest either completes (200)
	// or was rejected as draining (503) — never dropped — and the
	// process exits 0.
	sept := core.DefaultConfig().SnapshotTimes[2]
	ingestDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/ingest/snapshot", "application/json",
			strings.NewReader(fmt.Sprintf(`{"time": %q}`, sept.Format(time.RFC3339))))
		if err != nil {
			ingestDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		ingestDone <- resp.StatusCode
	}()
	time.Sleep(50 * time.Millisecond) // let the POST reach the mutator
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-ingestDone:
		if code != 200 && code != 503 {
			t.Errorf("in-flight ingest during drain answered %d, want 200 or 503", code)
		}
	case <-time.After(60 * time.Second):
		t.Error("in-flight ingest never answered during drain")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("studyd exited uncleanly after SIGTERM: %v\nstderr:\n%s", err, stderrBuf.String())
	}
	if !strings.Contains(stderrBuf.String(), "drained cleanly") {
		t.Errorf("no drain confirmation on stderr:\n%s", stderrBuf.String())
	}
}

// TestPreloadAndHealth smoke-tests -preload: the daemon must come up
// already serving a complete study.
func TestPreloadAndHealth(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full preloaded study")
	}
	cmd, base, _ := startDaemon(t,
		"-listen", "127.0.0.1:0", "-scale", "quick",
		"-nv", "4096", "-sources", "3000", "-months", "9", "-preload")
	defer cmd.Process.Kill()

	if code, body := httpGet(t, base+"/healthz"); code != 200 || !bytes.Contains(body, []byte(`"months": 9`)) {
		t.Fatalf("healthz after preload: %d %s", code, body)
	}
	if code, body := httpGet(t, base+"/artifacts/fig7_fig8?format=tsv"); code != 200 ||
		!bytes.HasPrefix(body, []byte("snapshot\t")) {
		t.Fatalf("fig7_fig8 after preload: %d %.120s", code, body)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("preloaded daemon exited uncleanly: %v", err)
	}
}
