// Command studyd is the resident study daemon: one long-lived process
// that owns a single study, grows it incrementally over a small HTTP
// ingest API (telescope windows and honeyfarm months arrive one at a
// time instead of being enumerated up front), and serves all seven
// paper artifacts — Tables I-II, Figures 3-8 — as JSON or TSV from a
// published snapshot that concurrent pollers read at one atomic load
// per request.
//
// Usage:
//
//	studyd [-listen ADDR] [-store ADDR] [-scale quick|default]
//	       [-nv N] [-sources N] [-seed N] [-months N]
//	       [-report-workers N] [-preload]
//
// On start the daemon prints "studyd listening on ADDR" to stderr
// (machine-parsable by supervisors and the e2e test; ADDR resolves
// -listen's :0 to the bound port). With -store it dials a tripled
// service, publishes every ingested table there, appends a ledger row
// per ingest, and on restart replays the ledger to recover the study.
// With -preload the full batch study (every month, the paper's
// snapshot times) is ingested before serving, so artifacts are warm
// immediately.
//
// Endpoints (see DESIGN.md "Study daemon"):
//
//	GET  /healthz                     liveness + study size
//	GET  /status                      sizes, seq, per-artifact state
//	GET  /artifacts                   artifact index
//	GET  /artifacts/{id}?format=tsv   one artifact (json default)
//	POST /ingest/month                {"month": 3} or {"month": "2020-05"}
//	POST /ingest/snapshot             {"time": "2020-06-17T12:00:00Z"}
//
// SIGTERM or SIGINT drains gracefully: new ingests get 503, in-flight
// requests (including an ingest mid-recompute) finish, the listener
// closes, the store connection flushes, and the process exits 0. A
// second signal aborts immediately with exit 4.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen        = flag.String("listen", "127.0.0.1:8473", "HTTP listen address (use :0 for an ephemeral port)")
		store         = flag.String("store", "", "tripled service address for durable backing (empty = in-memory only)")
		scale         = flag.String("scale", "quick", "preset: quick or default")
		nv            = flag.Int("nv", 0, "override telescope window size NV")
		sources       = flag.Int("sources", 0, "override population size")
		seed          = flag.Int64("seed", 0, "override random seed")
		months        = flag.Int("months", 0, "override study length in months")
		reportWorkers = flag.Int("report-workers", 0, "report-graph fit fan-out (1 = serial oracle, 0 = GOMAXPROCS)")
		preload       = flag.Bool("preload", false, "ingest the full batch study before serving")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	)
	flag.Parse()

	cfg := core.QuickConfig()
	if *scale == "default" {
		cfg = core.DefaultConfig()
	}
	if *nv > 0 {
		cfg.NV = *nv
	}
	if *sources > 0 {
		cfg.Radiation.NumSources = *sources
	}
	if *seed != 0 {
		cfg.Radiation.Seed = *seed
	}
	if *months > 0 {
		cfg.Radiation.Months = *months
	}
	cfg.ReportWorkers = *reportWorkers
	cfg.StoreAddr = *store

	// The resident daemon grows snapshots over the ingest API;
	// cfg.SnapshotTimes only seeds -preload. A -months override can
	// shrink the study below some preset dates — drop those rather
	// than refuse to start.
	kept := cfg.SnapshotTimes[:0:0]
	for _, ts := range cfg.SnapshotTimes {
		if m := cfg.MonthOf(ts); m >= 0 && m < float64(cfg.Radiation.Months) {
			kept = append(kept, ts)
			continue
		}
		if *preload {
			log.Printf("studyd: preload: snapshot %v outside the %d-month study, skipped", ts, cfg.Radiation.Months)
		}
	}
	cfg.SnapshotTimes = kept

	d, err := daemon.New(cfg)
	if err != nil {
		log.Printf("studyd: %v", err)
		return 1
	}
	if snap := d.Snapshot(); snap.Months > 0 || snap.Snapshots > 0 {
		log.Printf("studyd: recovered %d months, %d snapshots from store", snap.Months, snap.Snapshots)
	}
	if *preload {
		for m := 0; m < cfg.Radiation.Months; m++ {
			if err := d.IngestMonth(m); err != nil {
				log.Printf("studyd: preload month %d: %v", m, err)
				return 1
			}
		}
		for _, ts := range cfg.SnapshotTimes {
			if err := d.IngestSnapshot(ts); err != nil {
				log.Printf("studyd: preload snapshot %v: %v", ts, err)
				return 1
			}
		}
		log.Printf("studyd: preloaded %d months, %d snapshots", cfg.Radiation.Months, len(cfg.SnapshotTimes))
	}

	srv, err := daemon.Serve(d, *listen)
	if err != nil {
		log.Printf("studyd: %v", err)
		return 1
	}
	log.Printf("studyd listening on %s", srv.Addr())

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	<-sigs
	log.Printf("studyd: draining (in-flight work finishes, new ingests rejected)")

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	select {
	case err := <-done:
		if err != nil {
			log.Printf("studyd: drain: %v", err)
			return 1
		}
		log.Printf("studyd: drained cleanly")
		return 0
	case <-sigs:
		log.Printf("studyd: second signal, aborting drain")
		return 4
	}
}
