// Command honeyfarm-sim runs the outpost side of the study standalone:
// it ingests the configured number of months of synthetic radiation into
// a honeyfarm, prints the monthly source counts and classification
// census (the operator's view of "analyze and label" enrichment), and
// optionally dumps each month's D4M table as TSV.
//
// Usage:
//
//	honeyfarm-sim [-sources N] [-seed N] [-months N] [-sensors N] [-dump DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/honeyfarm"
	"repro/internal/radiation"
)

func main() {
	var (
		sources = flag.Int("sources", 100000, "population size")
		seed    = flag.Int64("seed", 1, "random seed")
		months  = flag.Int("months", 15, "months to ingest")
		sensors = flag.Int("sensors", 300, "honeyfarm sensor count")
		dump    = flag.String("dump", "", "directory to dump monthly TSV tables (optional)")
	)
	flag.Parse()

	cfg := radiation.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumSources = *sources
	cfg.Months = *months
	pop, err := radiation.NewPopulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	farm := honeyfarm.New(*sensors, *seed+1)
	start := time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)

	fmt.Printf("%-9s %9s   census\n", "month", "sources")
	for m := 0; m < *months; m++ {
		ms := start.AddDate(0, m, 0)
		label := ms.Format("2006-01")
		mw := farm.IngestMonth(label, ms, pop.HoneyfarmMonth(m, ms))
		fmt.Printf("%-9s %9d   ", label, mw.Sources())
		for i, row := range mw.ClassificationCensus() {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%s %d", row.Classification, row.Sources)
		}
		fmt.Println()

		if *dump != "" {
			if err := os.MkdirAll(*dump, 0o755); err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*dump, label+".tsv")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := mw.Table.WriteTSV(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
	}
	if *dump != "" {
		log.Printf("monthly tables dumped to %s", *dump)
	}
}
