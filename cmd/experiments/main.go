// Command experiments runs the full study and scores every reproduced
// artifact against the paper's claims and the generator's ground truth,
// emitting a markdown verdict table — the automated backbone of
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-scale quick|default] [-nv N] [-sources N] [-seed N]
//	            [-workers N] [-leaf-size N] [-batch N] [-study-workers N]
//	            [-report-workers N] [-artifacts DIR] [-store ADDR|auto]
//
// Every measured value comes off the unified report graph (the same
// memoized artifacts cmd/figures renders); -artifacts additionally
// dumps all seven as TSV through the shared renderer.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/tripled"
)

type check struct {
	id       string
	claim    string
	measured string
	pass     bool
}

func main() {
	var (
		scale    = flag.String("scale", "default", "preset: quick or default")
		nv       = flag.Int("nv", 0, "override telescope window size NV")
		sources  = flag.Int("sources", 0, "override population size")
		seed     = flag.Int64("seed", 0, "override random seed")
		workers  = flag.Int("workers", 0, "engine shard workers (1 = serial, 0 = GOMAXPROCS)")
		leafSize = flag.Int("leaf-size", 0, "override entries per hypersparse leaf matrix")
		batch    = flag.Int("batch", 0, "packets per engine batch (0 = leaf size)")
		study    = flag.Int("study-workers", 0, "study-level fan-out: months/snapshots in flight (1 = serial oracle, 0 = GOMAXPROCS)")
		repWork  = flag.Int("report-workers", 0, "report-graph fit fan-out (1 = serial oracle, 0 = GOMAXPROCS)")
		artDir   = flag.String("artifacts", "", "also write all seven artifacts as TSV to this directory")
		store    = flag.String("store", "", `tripled D4M server for the correlation tables ("auto" = in-process)`)
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	if *scale == "quick" {
		cfg = core.QuickConfig()
	}
	if *nv > 0 {
		cfg.NV = *nv
	}
	if *sources > 0 {
		cfg.Radiation.NumSources = *sources
	}
	if *seed != 0 {
		cfg.Radiation.Seed = *seed
	}
	cfg.Workers = *workers
	if *leafSize > 0 {
		cfg.LeafSize = *leafSize
	}
	cfg.Batch = *batch
	cfg.StudyWorkers = *study
	cfg.ReportWorkers = *repWork
	if *store == "auto" {
		srv, err := tripled.Serve(tripled.NewStore(), "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		cfg.StoreAddr = srv.Addr()
		log.Printf("in-process tripled store on %s", cfg.StoreAddr)
	} else {
		cfg.StoreAddr = *store
	}

	pipe, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	log.Printf("running study (NV=%d, %d sources, workers=%d, study-workers=%d)...",
		cfg.NV, cfg.Radiation.NumSources, cfg.Workers, cfg.StudyWorkers)
	runStart := time.Now()
	res, err := pipe.RunContext(ctx)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(runStart)
	log.Printf("study complete in %s: %d windows x %d packets through the engine hot path (%.0f pkts/s wall, whole study)",
		elapsed.Round(time.Millisecond), len(res.Windows), cfg.NV,
		float64(len(res.Windows)*cfg.NV)/elapsed.Seconds())

	if *artDir != "" {
		if err := os.MkdirAll(*artDir, 0o755); err != nil {
			log.Fatal(err)
		}
		g := res.Report()
		for _, id := range report.All() {
			name := filepath.Join(*artDir, report.Filename(id, "tsv"))
			f, err := os.Create(name)
			if err != nil {
				log.Fatal(err)
			}
			if err := report.WriteTSV(f, g, id); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
		log.Printf("wrote %d artifacts to %s", len(report.All()), *artDir)
	}

	var checks []check

	// T1: dataset inventory shape.
	t1 := res.TableI()
	snapRows := 0
	for _, r := range t1 {
		if r.CAIDAStart != "" {
			snapRows++
		}
	}
	checks = append(checks, check{
		id:       "T1",
		claim:    "15 honeyfarm months + 5 telescope snapshots",
		measured: fmt.Sprintf("%d months, %d snapshot rows", len(t1), snapRows),
		pass:     len(t1) == cfg.Radiation.Months && snapRows == len(cfg.SnapshotTimes),
	})

	// T2: NV conservation through the anonymized matrices.
	allNV := true
	for _, q := range res.TableII() {
		if q.ValidPackets != float64(cfg.NV) {
			allNV = false
		}
	}
	checks = append(checks, check{
		id:       "T2",
		claim:    "Table II valid packets == NV on anonymized matrices",
		measured: fmt.Sprintf("all %d windows conserve NV: %v", len(res.Windows), allNV),
		pass:     allNV,
	})

	// F3: ZM alpha near the paper's 1.76.
	var alphaMin, alphaMax float64 = math.Inf(1), math.Inf(-1)
	for _, s := range res.Fig3() {
		alphaMin = math.Min(alphaMin, s.Alpha)
		alphaMax = math.Max(alphaMax, s.Alpha)
	}
	checks = append(checks, check{
		id:       "F3",
		claim:    "Zipf-Mandelbrot alpha ~ 1.76 (paper)",
		measured: fmt.Sprintf("alpha in [%.2f, %.2f] across snapshots", alphaMin, alphaMax),
		pass:     alphaMin > 1.4 && alphaMax < 2.2,
	})

	// F4: bright sources ~always visible; faint visibility log-linear.
	fig4, err := res.Fig4()
	if err != nil {
		log.Fatal(err)
	}
	// Individual bright bands hold few sources (the tail is thin), so
	// pool matched/total across all bright bands per snapshot instead of
	// gating on noisy per-band fractions.
	brightOK := true
	var pooled []float64
	var logd, frac []float64
	for _, s := range fig4 {
		brightMatched, brightTotal := 0, 0
		for _, p := range s.Points {
			if float64(p.Band) >= cfg.SqrtNVLog2() {
				brightMatched += p.Matched
				brightTotal += p.Sources
			} else if p.Sources >= 15 {
				logd = append(logd, float64(p.Band))
				frac = append(frac, p.Fraction)
			}
		}
		if brightTotal > 0 {
			f := float64(brightMatched) / float64(brightTotal)
			pooled = append(pooled, f)
			if f < 0.6 {
				brightOK = false
			}
		}
	}
	r := stats.Pearson(logd, frac)
	checks = append(checks, check{
		id:       "F4a",
		claim:    "bright sources (d > sqrt(NV)) nearly always co-observed",
		measured: fmt.Sprintf("pooled bright fractions per snapshot: %.2f", pooled),
		pass:     brightOK && len(pooled) > 0,
	})
	checks = append(checks, check{
		id:       "F4b",
		claim:    "faint visibility proportional to log2(d)",
		measured: fmt.Sprintf("Pearson(log2 d, fraction) = %.3f over %d band points", r, len(logd)),
		pass:     r > 0.85,
	})

	// F5: modified Cauchy beats Gaussian and Cauchy.
	_, fits, err := res.Fig5()
	if err != nil {
		log.Fatal(err)
	}
	mc, ca, ga := fits["modified-cauchy"].Residual, fits["cauchy"].Residual, fits["gaussian"].Residual
	checks = append(checks, check{
		id:       "F5",
		claim:    "modified Cauchy best of the three families",
		measured: fmt.Sprintf("residuals: MC %.2f, Cauchy %.2f, Gaussian %.2f", mc, ca, ga),
		pass:     mc <= ca && mc <= ga,
	})

	// F7: alpha ~ 1 typical; compare against generator alpha*.
	var alphas []float64
	for _, sweep := range res.Fig7And8() {
		for _, f := range sweep {
			if f.Sources >= cfg.MinBandSources*2 {
				alphas = append(alphas, f.Alpha)
			}
		}
	}
	aSum := stats.Summarize(alphas)
	checks = append(checks, check{
		id: "F7",
		claim: fmt.Sprintf("typical modified-Cauchy alpha ~ 1 (generator alpha* = %g)",
			cfg.Radiation.AlphaStar),
		measured: fmt.Sprintf("mean alpha = %.2f over %d band fits", aSum.Mean, aSum.N),
		pass:     aSum.N > 0 && aSum.Mean > 0.6 && aSum.Mean < 1.5,
	})

	// F8: the one-month-drop dip sits at the generator's DipLog2 (the
	// paper's d ~ 10^3).
	bestBand, bestDrop := -1, 0.0
	for _, sweep := range res.Fig7And8() {
		for _, f := range sweep {
			if f.Sources >= cfg.MinBandSources && f.Drop > bestDrop {
				bestDrop = f.Drop
				bestBand = f.Band
			}
		}
	}
	checks = append(checks, check{
		id: "F8",
		claim: fmt.Sprintf("one-month drop maximal near d = 2^%g (paper: d ~ 10^3)",
			cfg.Radiation.DipLog2),
		measured: fmt.Sprintf("max drop %.2f at band 2^%d", bestDrop, bestBand),
		pass:     bestBand >= int(cfg.Radiation.DipLog2)-3 && bestBand <= int(cfg.Radiation.DipLog2)+3,
	})

	// Render.
	fmt.Println("| id | claim | measured | verdict |")
	fmt.Println("|---|---|---|---|")
	failures := 0
	for _, c := range checks {
		verdict := "PASS"
		if !c.pass {
			verdict = "FAIL"
			failures++
		}
		fmt.Printf("| %s | %s | %s | %s |\n", c.id, c.claim, c.measured, verdict)
	}
	if failures > 0 {
		fmt.Printf("\n%d of %d checks failed\n", failures, len(checks))
		os.Exit(1)
	}
	fmt.Printf("\nall %d checks passed\n", len(checks))
}
