// Command scenarios executes the YAML scenario suite: every file under
// -dir runs the full pipeline and checks its expected-result
// assertions, in parallel, with a pass/fail summary rendered through
// the unified report renderer (-format tsv or json).
//
// Usage:
//
//	scenarios [-dir scenarios] [-run REGEXP] [-workers N]
//	          [-format tsv|json] [-v]
//	scenarios -list [-dir scenarios]
//	scenarios -audit [-dir scenarios] [-cases docs/e2e-cases.md]
//
// Every failure — a failed assertion, a file that will not parse, a
// schema violation, a cancelled run, an audit drift — also emits one
// machine-readable JSON record per problem on stderr, and the exit
// code states the failure class:
//
//	0  every scenario passed (or -list / clean -audit)
//	1  at least one assertion did not hold
//	2  malformed YAML (parse error)
//	3  well-formed YAML violating the scenario schema
//	4  run cancelled (signal / context)
//	5  pipeline runtime error
//	6  -audit found documentation drift
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"regexp"
	"syscall"
	"time"

	"repro/internal/report"
	"repro/internal/scenario"
)

// Exit codes, one per failure class.
const (
	exitOK      = 0
	exitAssert  = 1
	exitParse   = 2
	exitSchema  = 3
	exitCancel  = 4
	exitRuntime = 5
	exitAudit   = 6
)

// failRecord is the machine-readable failure line emitted on stderr.
type failRecord struct {
	Kind      string `json:"kind"` // assertion, parse, schema, cancelled, runtime, audit
	Scenario  string `json:"scenario,omitempty"`
	File      string `json:"file,omitempty"`
	Assertion string `json:"assertion,omitempty"`
	Detail    string `json:"detail,omitempty"`
}

func emitFail(rec failRecord) {
	b, err := json.Marshal(rec)
	if err != nil {
		log.Fatalf("scenarios: encoding failure record: %v", err)
	}
	fmt.Fprintln(os.Stderr, string(b))
}

// loadExit classifies a LoadDir/Load error into its exit code and
// emits the matching record.
func loadExit(err error) int {
	switch {
	case errors.Is(err, scenario.ErrParse):
		emitFail(failRecord{Kind: "parse", Detail: err.Error()})
		return exitParse
	case errors.Is(err, scenario.ErrSchema):
		emitFail(failRecord{Kind: "schema", Detail: err.Error()})
		return exitSchema
	default:
		emitFail(failRecord{Kind: "runtime", Detail: err.Error()})
		return exitRuntime
	}
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		dir     = flag.String("dir", "scenarios", "scenario directory (*.yaml)")
		runExpr = flag.String("run", "", "only scenarios whose name matches this regexp")
		list    = flag.Bool("list", false, "list scenarios and exit without running")
		audit   = flag.Bool("audit", false, "cross-check -cases against the scenario files and exit")
		cases   = flag.String("cases", "docs/e2e-cases.md", "e2e cases document for -audit")
		workers = flag.Int("workers", 0, "parallel scenarios (0 = GOMAXPROCS)")
		format  = flag.String("format", "tsv", "summary encoding: tsv or json")
		verbose = flag.Bool("v", false, "print every check, not just failures")
	)
	flag.Parse()
	if *format != "tsv" && *format != "json" {
		log.Fatalf("scenarios: -format must be tsv or json, got %q", *format)
	}

	scs, err := scenario.LoadDir(*dir)
	if err != nil {
		return loadExit(err)
	}
	if *runExpr != "" {
		re, err := regexp.Compile(*runExpr)
		if err != nil {
			log.Fatalf("scenarios: -run: %v", err)
		}
		kept := scs[:0]
		for _, sc := range scs {
			if re.MatchString(sc.Name) {
				kept = append(kept, sc)
			}
		}
		scs = kept
		if len(scs) == 0 {
			log.Fatalf("scenarios: -run %q matches nothing", *runExpr)
		}
	}

	if *audit {
		findings, err := scenario.Audit(*cases, scs)
		if err != nil {
			emitFail(failRecord{Kind: "audit", Detail: err.Error()})
			return exitAudit
		}
		for _, f := range findings {
			emitFail(failRecord{Kind: "audit", Scenario: f.Case, Detail: f.Problem})
		}
		if len(findings) > 0 {
			fmt.Printf("audit: %d drift finding(s) between %s and %s\n", len(findings), *cases, *dir)
			return exitAudit
		}
		fmt.Printf("audit: %s and %s agree (%d scenarios)\n", *cases, *dir, len(scs))
		return exitOK
	}

	if *list {
		for _, sc := range scs {
			fmt.Printf("%-28s %-8s %2d assertions  %s\n", sc.Name, sc.Case, len(sc.Assertions), sc.Description)
		}
		return exitOK
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	results := scenario.RunAll(ctx, scs, *workers)

	// One summary row per scenario, rendered by the same Table model
	// every paper artifact goes through.
	tbl := &report.Table{
		Artifact: "scenario_suite",
		Comments: []string{
			fmt.Sprintf("scenario suite: %d scenarios from %s", len(results), *dir),
			fmt.Sprintf("wall %.2fs, %d workers requested", time.Since(start).Seconds(), *workers),
		},
		Columns: []string{"scenario", "case", "status", "checks", "failed", "elapsed_s", "detail"},
	}
	worst := exitOK
	raise := func(code int) {
		if code > worst {
			worst = code
		}
	}
	for _, r := range results {
		status, detail := "pass", ""
		failed := r.FailedChecks()
		switch {
		case r.Err != nil && errors.Is(r.Err, context.Canceled):
			status, detail = "cancelled", r.Err.Error()
			emitFail(failRecord{Kind: "cancelled", Scenario: r.Scenario.Name, File: r.Scenario.Path, Detail: detail})
			raise(exitCancel)
		case r.Err != nil:
			status, detail = "error", r.Err.Error()
			emitFail(failRecord{Kind: "runtime", Scenario: r.Scenario.Name, File: r.Scenario.Path, Detail: detail})
			raise(exitRuntime)
		case len(failed) > 0:
			status, detail = "fail", failed[0].Detail
			for _, c := range failed {
				emitFail(failRecord{Kind: "assertion", Scenario: r.Scenario.Name,
					File: r.Scenario.Path, Assertion: c.Assertion, Detail: c.Detail})
			}
			raise(exitAssert)
		}
		if *verbose {
			for _, c := range r.Checks {
				mark := "ok  "
				if !c.Pass {
					mark = "FAIL"
				}
				log.Printf("%s %-24s %-28s %s", mark, r.Scenario.Name, c.Assertion, c.Detail)
			}
		}
		tbl.Rows = append(tbl.Rows, []string{
			r.Scenario.Name,
			r.Scenario.Case,
			status,
			fmt.Sprintf("%d", len(r.Checks)),
			fmt.Sprintf("%d", len(failed)),
			fmt.Sprintf("%.2f", r.Elapsed.Seconds()),
			detail,
		})
	}

	var werr error
	if *format == "json" {
		werr = tbl.WriteJSON(os.Stdout)
	} else {
		werr = tbl.WriteTSV(os.Stdout)
	}
	if werr != nil {
		log.Fatalf("scenarios: rendering summary: %v", werr)
	}
	return worst
}
