package main

// main_test.go proves the CLI's failure-class contract end to end: a
// built binary run against crafted suites must exit with the code the
// doc comment promises and emit one machine-readable JSON failure
// record per problem on stderr.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

var (
	binOnce sync.Once
	binPath string
	binErr  error
)

// binary builds cmd/scenarios once per test run.
func binary(t *testing.T) string {
	t.Helper()
	binOnce.Do(func() {
		dir, err := os.MkdirTemp("", "scenarios-bin")
		if err != nil {
			binErr = err
			return
		}
		binPath = filepath.Join(dir, "scenarios")
		out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
		if err != nil {
			binErr = err
			binPath = string(out)
		}
	})
	if binErr != nil {
		t.Fatalf("building scenarios binary: %v\n%s", binErr, binPath)
	}
	t.Cleanup(func() {}) // binary dir is left for the process lifetime
	return binPath
}

const tinySuite = `name: tiny
case: Z99999
config:
  scale: quick
  nv: 512
  leaf_size: 128
  sources: 2000
  months: 3
  snapshot_months: [0.5]
assert:
  - windows: {max_dropped_frac: 0.9}
`

func writeSuite(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runCLI executes the binary and returns exit code, stdout, and the
// decoded JSON failure records from stderr.
func runCLI(t *testing.T, args ...string) (int, string, []map[string]any) {
	t.Helper()
	cmd := exec.Command(binary(t), args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	var records []map[string]any
	sc := bufio.NewScanner(&stderr)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "{") {
			continue // log noise
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("stderr line %q is not JSON: %v", line, err)
		}
		records = append(records, rec)
	}
	return code, stdout.String(), records
}

func TestExitOKAndList(t *testing.T) {
	dir := writeSuite(t, map[string]string{"tiny.yaml": tinySuite})
	code, out, recs := runCLI(t, "-dir", dir)
	if code != 0 || len(recs) != 0 {
		t.Fatalf("clean suite: exit %d, records %v", code, recs)
	}
	if !strings.Contains(out, "tiny\tZ99999\tpass") {
		t.Errorf("summary missing pass row:\n%s", out)
	}
	if code, out, _ := runCLI(t, "-dir", dir, "-list"); code != 0 || !strings.Contains(out, "tiny") {
		t.Errorf("-list: exit %d out %q", code, out)
	}
}

func TestExitAssertionFailure(t *testing.T) {
	// The acceptance check: corrupt one expected value; the run must
	// fail naming the scenario and the assertion.
	bad := tinySuite + "  - table2: {quantity: valid_packets, equals: 511}\n"
	dir := writeSuite(t, map[string]string{"tiny.yaml": bad})
	code, out, recs := runCLI(t, "-dir", dir)
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out)
	}
	if len(recs) != 1 || recs[0]["kind"] != "assertion" ||
		recs[0]["scenario"] != "tiny" || recs[0]["assertion"] != "table2.valid_packets" {
		t.Fatalf("failure records = %v", recs)
	}
	if !strings.Contains(out, "tiny\tZ99999\tfail") {
		t.Errorf("summary missing fail row:\n%s", out)
	}
}

func TestExitParseError(t *testing.T) {
	dir := writeSuite(t, map[string]string{"broken.yaml": "name: x\n\tboom"})
	code, _, recs := runCLI(t, "-dir", dir)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if len(recs) != 1 || recs[0]["kind"] != "parse" {
		t.Fatalf("failure records = %v", recs)
	}
}

func TestExitSchemaError(t *testing.T) {
	dir := writeSuite(t, map[string]string{
		"odd.yaml": "name: x\ncase: Z1\nassert:\n  - frobnicate: {min: 1}\n",
	})
	code, _, recs := runCLI(t, "-dir", dir)
	if code != 3 {
		t.Fatalf("exit %d, want 3", code)
	}
	if len(recs) != 1 || recs[0]["kind"] != "schema" ||
		!strings.Contains(recs[0]["detail"].(string), "frobnicate") {
		t.Fatalf("failure records = %v", recs)
	}
}

func TestExitCancelled(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a multi-second study to interrupt")
	}
	// A deliberately heavy scenario so SIGINT lands mid-run.
	heavy := `name: heavy
case: Z99998
config:
  scale: quick
  nv: 4194304
  sources: 400000
assert:
  - windows:
`
	dir := writeSuite(t, map[string]string{"heavy.yaml": heavy})
	cmd := exec.Command(binary(t), "-dir", dir)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("interrupted run finished cleanly (stderr %q); grow the heavy scenario", stderr.String())
	}
	if ee.ExitCode() != 4 {
		t.Fatalf("exit %d, want 4\nstderr: %s", ee.ExitCode(), stderr.String())
	}
	if !strings.Contains(stderr.String(), `"kind":"cancelled"`) {
		t.Errorf("no cancelled record on stderr: %s", stderr.String())
	}
}

func TestExitAuditDrift(t *testing.T) {
	dir := writeSuite(t, map[string]string{"tiny.yaml": tinySuite})
	cases := filepath.Join(t.TempDir(), "cases.md")
	doc := "| Case ID | Title | Priority | Smoke | Status | Coverage |\n" +
		"| - | - | - | - | - | - |\n" +
		"| Z99999 | Tiny | p1 |  | done | `tiny.yaml` |\n" +
		"| W00001 | Drift | p1 |  | done |  |\n"
	if err := os.WriteFile(cases, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, recs := runCLI(t, "-dir", dir, "-audit", "-cases", cases)
	if code != 6 {
		t.Fatalf("exit %d, want 6", code)
	}
	if len(recs) != 1 || recs[0]["kind"] != "audit" || recs[0]["scenario"] != "W00001" {
		t.Fatalf("failure records = %v", recs)
	}

	// And the clean doc passes.
	clean := "| Case ID | Title | Priority | Smoke | Status | Coverage |\n" +
		"| - | - | - | - | - | - |\n" +
		"| Z99999 | Tiny | p1 |  | done | `tiny.yaml` |\n"
	if err := os.WriteFile(cases, []byte(clean), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, recs := runCLI(t, "-dir", dir, "-audit", "-cases", cases); code != 0 || len(recs) != 0 {
		t.Fatalf("clean audit: exit %d records %v", code, recs)
	}
}

func TestRunFilter(t *testing.T) {
	other := strings.Replace(tinySuite, "name: tiny", "name: other", 1)
	other = strings.Replace(other, "Z99999", "Z99997", 1)
	dir := writeSuite(t, map[string]string{"a.yaml": tinySuite, "b.yaml": other})
	code, out, _ := runCLI(t, "-dir", dir, "-run", "^tiny$")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "tiny") || strings.Contains(out, "other") {
		t.Errorf("-run filter leaked:\n%s", out)
	}
}

func TestJSONSummary(t *testing.T) {
	dir := writeSuite(t, map[string]string{"tiny.yaml": tinySuite})
	code, out, _ := runCLI(t, "-dir", dir, "-format", "json")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	var doc struct {
		Artifact string   `json:"artifact"`
		Columns  []string `json:"columns"`
		Rows     [][]any  `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("summary is not JSON: %v\n%s", err, out)
	}
	if doc.Artifact != "scenario_suite" || len(doc.Rows) != 1 {
		t.Errorf("summary doc = %+v", doc)
	}
}
