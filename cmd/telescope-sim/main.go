// Command telescope-sim exercises the wire-format path of the pipeline:
// it generates one synthetic telescope window, writes it to a pcap
// capture file, reads the file back through the darkspace filter, and
// prints the Table II network quantities of the resulting anonymized
// hypersparse traffic matrix.
//
// Usage:
//
//	telescope-sim [-nv N] [-sources N] [-seed N] [-month M] [-pcap FILE]
//	              [-workers N] [-leaf-size N] [-batch N] [-windows N]
//
// With -windows > 1, additional windows are captured directly from the
// synthesizer through the same telescope, demonstrating the steady-state
// (warm-cache, zero-allocation) hot path.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro/internal/netquant"
	"repro/internal/pcap"
	"repro/internal/radiation"
	"repro/internal/telescope"
)

func main() {
	var (
		nv       = flag.Int("nv", 1<<18, "window size in valid packets")
		sources  = flag.Int("sources", 100000, "population size")
		seed     = flag.Int64("seed", 1, "random seed")
		month    = flag.Float64("month", 4.5, "beam month of the window")
		file     = flag.String("pcap", "window.pcap", "capture file to write")
		workers  = flag.Int("workers", 0, "engine shard workers (1 = serial, 0 = GOMAXPROCS)")
		leafSize = flag.Int("leaf-size", 1<<14, "entries per hypersparse leaf matrix")
		batch    = flag.Int("batch", 0, "packets per engine batch (0 = leaf size)")
		windows  = flag.Int("windows", 1, "total windows to capture; windows after the first run steady-state (warm caches, pooled scratch)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := radiation.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumSources = *sources
	pop, err := radiation.NewPopulation(cfg)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Date(2020, 6, 17, 12, 0, 0, 0, time.UTC)
	stream := pop.TelescopeStream(*month, start)
	log.Printf("window stream: %d active sources, %d expected packets",
		stream.ActiveSources(), stream.ExpectedPackets())

	f, err := os.Create(*file)
	if err != nil {
		log.Fatal(err)
	}
	w, err := pcap.NewWriter(f)
	if err != nil {
		log.Fatal(err)
	}
	var pkt pcap.Packet
	// Write enough raw packets to cover NV valid ones plus filter drops.
	budget := *nv + *nv/8 + 1024
	for w.Count() < budget && stream.Next(&pkt) {
		if err := w.WritePacket(&pkt); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d packets to %s", w.Count(), *file)

	rf, err := os.Open(*file)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	r, err := pcap.NewReader(rf)
	if err != nil {
		log.Fatal(err)
	}
	tel := telescope.New(cfg.Darkspace, "telescope-sim", telescope.WithLeafSize(*leafSize))
	capStart := time.Now()
	win, err := tel.CaptureWindowEngine(ctx, &telescope.ReaderSource{R: r}, *nv, *workers, *batch)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("captured %d valid packets (%d dropped) over %s in %d leaves (%.0f pkts/s, workers=%d)",
		win.NV, win.Dropped, win.Duration().Round(time.Millisecond), win.Leaves,
		float64(win.NV)/time.Since(capStart).Seconds(), *workers)

	// Steady-state windows: the telescope (anonymization caches, pooled
	// merge scratch, shard accumulators) is reused, so these run at the
	// warm hot-path rate rather than the cold first-window rate.
	for wn := 1; wn < *windows; wn++ {
		stream := pop.TelescopeStream(*month, start.Add(time.Duration(wn)*time.Hour))
		t0 := time.Now()
		w, err := tel.CaptureWindowEngine(ctx, stream, *nv, *workers, *batch)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("window %d: %d valid packets in %d leaves (%.0f pkts/s steady-state)",
			wn+1, w.NV, w.Leaves, float64(w.NV)/time.Since(t0).Seconds())
		win = w
	}

	fmt.Println("Network quantities (Table II), anonymized matrix:")
	for _, row := range netquant.Compute(win.Matrix).Rows() {
		fmt.Printf("  %-32s %s\n", row[0], row[1])
	}
}
