// Command figures regenerates every table and figure of the paper
// through the unified report subsystem, one file per artifact (or
// stdout with -stdout), as TSV or JSON.
//
// Usage:
//
//	figures [-scale quick|default] [-nv N] [-sources N] [-seed N]
//	        [-format tsv|json] [-report-workers N]
//	        [-out DIR] [-stdout] [-only table1,fig3,...]
//
// Artifacts: table1, table2, fig3, fig4, fig5, fig6, fig7, fig8
// (fig7 and fig8 share one file, fig7_fig8, as both render the same
// per-band fit sweep).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	var (
		scale         = flag.String("scale", "default", "preset: quick or default")
		nv            = flag.Int("nv", 0, "override telescope window size NV")
		sources       = flag.Int("sources", 0, "override population size")
		seed          = flag.Int64("seed", 0, "override random seed")
		format        = flag.String("format", "tsv", "output encoding: tsv or json")
		reportWorkers = flag.Int("report-workers", 0, "report-graph fit fan-out (1 = serial oracle, 0 = GOMAXPROCS)")
		outDir        = flag.String("out", "figures_out", "output directory")
		stdout        = flag.Bool("stdout", false, "write everything to stdout instead of files")
		only          = flag.String("only", "", "comma-separated subset of artifacts")
	)
	flag.Parse()
	if *format != "tsv" && *format != "json" {
		log.Fatalf("figures: -format must be tsv or json, got %q", *format)
	}

	cfg := core.DefaultConfig()
	if *scale == "quick" {
		cfg = core.QuickConfig()
	}
	if *nv > 0 {
		cfg.NV = *nv
	}
	if *sources > 0 {
		cfg.Radiation.NumSources = *sources
	}
	if *seed != 0 {
		cfg.Radiation.Seed = *seed
	}
	cfg.ReportWorkers = *reportWorkers

	// -only keys are the historical eight names; fig7 and fig8 both
	// select the fused fig7_fig8 artifact.
	want := map[report.ArtifactID]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			switch k = strings.TrimSpace(k); k {
			case "fig7", "fig8":
				want[report.Fig7Fig8] = true
			default:
				want[report.ArtifactID(k)] = true
			}
		}
	}
	enabled := func(id report.ArtifactID) bool { return len(want) == 0 || want[id] }

	pipe, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("running study: NV=%d sources=%d months=%d snapshots=%d",
		cfg.NV, cfg.Radiation.NumSources, cfg.Radiation.Months, len(cfg.SnapshotTimes))
	res, err := pipe.Run()
	if err != nil {
		log.Fatal(err)
	}
	g := res.Report()

	open := func(name string) (io.WriteCloser, error) {
		if *stdout {
			fmt.Printf("\n==> %s <==\n", name)
			return nopCloser{os.Stdout}, nil
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return nil, err
		}
		return os.Create(filepath.Join(*outDir, name))
	}
	write := report.WriteTSV
	if *format == "json" {
		write = report.WriteJSON
	}
	for _, id := range report.All() {
		if !enabled(id) {
			continue
		}
		name := report.Filename(id, *format)
		w, err := open(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := write(w, g, id); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if err := w.Close(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if !*stdout {
			log.Printf("wrote %s", filepath.Join(*outDir, name))
		}
	}
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }
