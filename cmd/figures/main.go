// Command figures regenerates every table and figure of the paper as
// tab-separated series, one file per artifact (or stdout with -stdout).
//
// Usage:
//
//	figures [-scale quick|default] [-nv N] [-sources N] [-seed N]
//	        [-out DIR] [-stdout] [-only table1,fig3,...]
//
// Artifacts: table1, table2, fig3, fig4, fig5, fig6, fig7, fig8.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
)

func main() {
	var (
		scale   = flag.String("scale", "default", "preset: quick or default")
		nv      = flag.Int("nv", 0, "override telescope window size NV")
		sources = flag.Int("sources", 0, "override population size")
		seed    = flag.Int64("seed", 0, "override random seed")
		outDir  = flag.String("out", "figures_out", "output directory for TSV files")
		stdout  = flag.Bool("stdout", false, "write everything to stdout instead of files")
		only    = flag.String("only", "", "comma-separated subset of artifacts")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	if *scale == "quick" {
		cfg = core.QuickConfig()
	}
	if *nv > 0 {
		cfg.NV = *nv
	}
	if *sources > 0 {
		cfg.Radiation.NumSources = *sources
	}
	if *seed != 0 {
		cfg.Radiation.Seed = *seed
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	enabled := func(k string) bool { return len(want) == 0 || want[k] }

	pipe, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("running study: NV=%d sources=%d months=%d snapshots=%d",
		cfg.NV, cfg.Radiation.NumSources, cfg.Radiation.Months, len(cfg.SnapshotTimes))
	res, err := pipe.Run()
	if err != nil {
		log.Fatal(err)
	}

	open := func(name string) (io.WriteCloser, error) {
		if *stdout {
			fmt.Printf("\n==> %s <==\n", name)
			return nopCloser{os.Stdout}, nil
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return nil, err
		}
		return os.Create(filepath.Join(*outDir, name))
	}
	emit := func(name string, fn func(io.Writer) error) {
		w, err := open(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := fn(w); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if err := w.Close(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if !*stdout {
			log.Printf("wrote %s", filepath.Join(*outDir, name))
		}
	}

	if enabled("table1") {
		emit("table1.tsv", func(w io.Writer) error { return writeTableI(w, res) })
	}
	if enabled("table2") {
		emit("table2.tsv", func(w io.Writer) error { return writeTableII(w, res) })
	}
	if enabled("fig3") {
		emit("fig3.tsv", func(w io.Writer) error { return writeFig3(w, res) })
	}
	if enabled("fig4") {
		emit("fig4.tsv", func(w io.Writer) error { return writeFig4(w, res) })
	}
	if enabled("fig5") {
		emit("fig5.tsv", func(w io.Writer) error { return writeFig5(w, res) })
	}
	if enabled("fig6") {
		emit("fig6.tsv", func(w io.Writer) error { return writeFig6(w, res) })
	}
	if enabled("fig7") || enabled("fig8") {
		emit("fig7_fig8.tsv", func(w io.Writer) error { return writeFig78(w, res) })
	}
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

func writeTableI(w io.Writer, res *core.Result) error {
	if _, err := fmt.Fprintln(w, "gn_start\tgn_days\tgn_sources\tcaida_start\tcaida_duration\tcaida_packets\tcaida_sources"); err != nil {
		return err
	}
	for _, r := range res.TableI() {
		if _, err := fmt.Fprintf(w, "%s\t%d\t%d\t%s\t%s\t%d\t%d\n",
			r.GNStart, r.GNDays, r.GNSources, r.CAIDAStart, r.CAIDADuration, r.CAIDAPackets, r.CAIDASources); err != nil {
			return err
		}
	}
	return nil
}

func writeTableII(w io.Writer, res *core.Result) error {
	if _, err := fmt.Fprintln(w, "snapshot\tquantity\tvalue"); err != nil {
		return err
	}
	for i, q := range res.TableII() {
		label := res.Study.Snapshots[i].Label
		for _, row := range q.Rows() {
			if _, err := fmt.Fprintf(w, "%s\t%s\t%s\n", label, row[0], row[1]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeFig3(w io.Writer, res *core.Result) error {
	if _, err := fmt.Fprintln(w, "snapshot\td\tprob\tzm_alpha\tzm_delta"); err != nil {
		return err
	}
	for _, s := range res.Fig3() {
		probs := s.Binned.Prob()
		for i, p := range probs {
			if p == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s\t%g\t%.6g\t%.3f\t%.3f\n",
				s.Label, s.Binned.Centers[i], p, s.Alpha, s.Delta); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeFig4(w io.Writer, res *core.Result) error {
	series, err := res.Fig4()
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "snapshot\td\tsources\tmatched\tfraction\tci_lo\tci_hi\tmodel_log2d_over_log2sqrtNV"); err != nil {
		return err
	}
	for _, s := range series {
		for i, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s\t%g\t%d\t%d\t%.4f\t%.4f\t%.4f\t%.4f\n",
				s.Label, p.D, p.Sources, p.Matched, p.Fraction, p.CILo, p.CIHi, s.Model[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeFig5(w io.Writer, res *core.Result) error {
	series, fits, err := res.Fig5()
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# snapshot %s, band 2^%d (%d sources)\n",
		series.Snapshot, series.Band, series.Sources); err != nil {
		return err
	}
	for name, fit := range fits {
		if _, err := fmt.Fprintf(w, "# fit %s: model=%+v residual=%.4f\n", name, fit.Model, fit.Residual); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "month\tdt\tfraction\tmod_cauchy\tcauchy\tgaussian"); err != nil {
		return err
	}
	mc := fits["modified-cauchy"].Curve(series.Dt)
	ca := fits["cauchy"].Curve(series.Dt)
	ga := fits["gaussian"].Curve(series.Dt)
	for i := range series.Dt {
		if _, err := fmt.Fprintf(w, "%s\t%.2f\t%.4f\t%.4f\t%.4f\t%.4f\n",
			series.Labels[i], series.Dt[i], series.Fraction[i], mc[i], ca[i], ga[i]); err != nil {
			return err
		}
	}
	return nil
}

func writeFig6(w io.Writer, res *core.Result) error {
	all, fits := res.Fig6()
	if _, err := fmt.Fprintln(w, "snapshot\tband\tsources\tmonth\tdt\tfraction\tfit"); err != nil {
		return err
	}
	for k, s := range all {
		curve := fits[k].Curve(s.Dt)
		for i := range s.Dt {
			if _, err := fmt.Fprintf(w, "%s\t%d\t%d\t%s\t%.2f\t%.4f\t%.4f\n",
				s.Snapshot, s.Band, s.Sources, s.Labels[i], s.Dt[i], s.Fraction[i], curve[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeFig78(w io.Writer, res *core.Result) error {
	if _, err := fmt.Fprintln(w, "snapshot\td\tsources\talpha\tbeta\tone_month_drop\tresidual"); err != nil {
		return err
	}
	for _, sweep := range res.Fig7And8() {
		for _, f := range sweep {
			if _, err := fmt.Fprintf(w, "%s\t%g\t%d\t%.3f\t%.3f\t%.3f\t%.4f\n",
				f.Snapshot, f.D, f.Sources, f.Alpha, f.Beta, f.Drop, f.Residual); err != nil {
				return err
			}
		}
	}
	return nil
}
