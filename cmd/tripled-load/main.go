// Command tripled-load is the load generator for the tripled D4M
// service: M concurrent clients drive a mixed PUT/GET/TOPDEG workload
// against one server, an N-node replicated cluster, or a remote target,
// and report per-op-kind throughput and latency percentiles — the
// harness for sizing the store's stripe count, the client's
// batch/pipelining parameters, and the cluster's failover behavior
// against the ROADMAP's heavy-traffic goal.
//
// Usage:
//
//	tripled-load [-addr HOST:PORT|CLUSTER-SPEC] [-nodes N] [-replicas R]
//	             [-chaos MODE] [-clients M] [-ops N] [-batch B]
//	             [-rows N] [-mix PUT,GET,TOPDEG] [-stripes N] [-seed N]
//	             [-data-dir DIR] [-wal-sync always|interval]
//
// With -nodes > 1 the tool serves N in-process tripled servers and
// drives them through the consistent-hash cluster client at -replicas
// copies per row. -chaos puts every node behind a fault-injection
// proxy and flips node 1 into MODE (blackhole, delay, slowread, reset,
// drop) at the exact halfway point of every client's script, so the
// tail of the run measures detection + failover, deterministically
// placed. -addr accepts a cluster spec ("a,b,c;replicas=2") as well as
// a single address.
//
// With -data-dir the in-process servers are durable: each appends its
// mutations to a checksummed WAL under DIR/node-N before acking, and a
// rerun with the same dir replays the log at startup. -chaos crash
// (requires -data-dir) closes one node at the halfway barrier,
// discards its in-memory store, restarts it on the same address from
// its WAL, and reports the recovery wall time; a single durable node
// is driven through a 1-node cluster spec so client retries absorb the
// restart window.
//
// With -batch > 1 the PUT share of the workload flows through the
// pipelined BATCH path (B cells per request); -batch 1 is the classic
// one-round-trip-per-cell mode the batched protocol replaced.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/tripled"
	"repro/internal/tripled/cluster"
	"repro/internal/tripled/loadgen"
)

func main() {
	var (
		addr     = flag.String("addr", "", "tripled server address or cluster spec (default: serve in-process)")
		nodes    = flag.Int("nodes", 1, "in-process servers to start (ignored with -addr)")
		replicas = flag.Int("replicas", cluster.DefaultReplicas, "copies per row when -nodes > 1")
		chaos    = flag.String("chaos", "", "fault injected at half-run: blackhole, delay, slowread, reset, drop (node 1), or crash (needs -data-dir)")
		clients  = flag.Int("clients", 8, "concurrent client connections")
		ops      = flag.Int("ops", 5000, "operations per client")
		batch    = flag.Int("batch", 256, "cells per PUT batch (1 = per-cell round trips)")
		rows     = flag.Int("rows", 100000, "row keyspace size")
		mixFlag  = flag.String("mix", "70,25,5", "PUT,GET,TOPDEG weights")
		stripes  = flag.Int("stripes", tripled.DefaultStripes, "store stripes for in-process servers")
		topk     = flag.Int("topk", 10, "k of each TOPDEG query")
		seed     = flag.Int64("seed", 1, "workload seed")
		dataDir  = flag.String("data-dir", "", "make in-process servers durable: per-node WAL dirs under this path")
		walSync  = flag.String("wal-sync", "interval", "WAL sync policy with -data-dir: always or interval")
	)
	flag.Parse()
	mix, err := loadgen.ParseMix(*mixFlag)
	if err != nil {
		log.Fatal(err)
	}

	crashChaos := *chaos == "crash"
	if crashChaos && *dataDir == "" {
		log.Fatal("tripled-load: -chaos crash needs -data-dir (recovery replays the WAL)")
	}
	target := *addr
	var proxies []*faultinject.Proxy
	var servers []*tripled.Server // in-process servers, by node index
	var rawAddrs []string         // their concrete listen addresses
	var nodeDirs []string         // their WAL dirs ("" without -data-dir)
	serveNode := func(i int, nodeAddr string) (*tripled.Server, error) {
		var opts []tripled.Option
		if *dataDir != "" {
			dir := filepath.Join(*dataDir, fmt.Sprintf("node-%d", i))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, err
			}
			for len(nodeDirs) <= i {
				nodeDirs = append(nodeDirs, "")
			}
			nodeDirs[i] = dir
			opts = append(opts, tripled.WithDataDir(dir), tripled.WithWALSyncPolicy(*walSync))
		}
		return tripled.Serve(tripled.NewStoreStripes(*stripes), nodeAddr, opts...)
	}
	if target == "" {
		if *nodes < 1 {
			log.Fatal("tripled-load: -nodes must be >= 1")
		}
		var addrs []string
		for i := 0; i < *nodes; i++ {
			srv, err := serveNode(i, "127.0.0.1:0")
			if err != nil {
				log.Fatal(err)
			}
			defer func(i int) { servers[i].Close() }(i)
			if rec := srv.Recovery(); rec.Enabled && (rec.HadSnapshot || rec.TailRecords > 0) {
				fmt.Printf("node %d: recovered %d snapshot cells + %d tail records in %v\n",
					i, rec.SnapshotCells, rec.TailRecords, rec.Wall.Round(time.Millisecond))
			}
			servers = append(servers, srv)
			nodeAddr := srv.Addr()
			rawAddrs = append(rawAddrs, nodeAddr)
			if *chaos != "" && !crashChaos {
				p, err := faultinject.New(nodeAddr)
				if err != nil {
					log.Fatal(err)
				}
				defer p.Close()
				proxies = append(proxies, p)
				nodeAddr = p.Addr()
			}
			addrs = append(addrs, nodeAddr)
		}
		if *nodes == 1 {
			target = addrs[0]
			fmt.Printf("in-process server on %s (%d stripes)\n", target, *stripes)
			if crashChaos {
				// A lone durable node restarting mid-run has no peer to fail
				// over to; route through a 1-node cluster spec so retries
				// absorb the restart window.
				target = fmt.Sprintf("%s;replicas=1;io_timeout=500ms;retries=8", addrs[0])
			}
		} else {
			target = fmt.Sprintf("%s;replicas=%d", strings.Join(addrs, ","), *replicas)
			fmt.Printf("in-process %d-node cluster, %d replicas/row (%d stripes each)\n",
				*nodes, *replicas, *stripes)
		}
		if *chaos != "" && *nodes > 1 {
			// Bound detection cost so the post-fault tail measures failover,
			// not five-second default timeouts.
			target += ";io_timeout=500ms;retries=8"
		}
	} else if *chaos != "" {
		log.Fatal("tripled-load: -chaos needs in-process nodes (drop -addr)")
	}

	var mode faultinject.Mode
	if *chaos != "" && !crashChaos {
		if len(proxies) < 2 {
			log.Fatal("tripled-load: -chaos needs -nodes >= 2 (a 1-node cluster cannot fail over)")
		}
		mode, err = faultinject.ParseMode(*chaos)
		if err != nil {
			log.Fatal(err)
		}
	}

	// Track cluster clients so the post-run report can sum failovers.
	var mu sync.Mutex
	var cclients []*cluster.Client
	cfg := loadgen.Config{
		Clients: *clients,
		Ops:     *ops,
		Batch:   *batch,
		Rows:    *rows,
		Mix:     mix,
		TopK:    *topk,
		Seed:    *seed,
		Dial: func(int) (tripled.Conn, error) {
			if !cluster.IsClusterSpec(target) {
				return tripled.Dial(target)
			}
			c, err := cluster.Dial(target)
			if err == nil {
				mu.Lock()
				cclients = append(cclients, c)
				mu.Unlock()
			}
			return c, err
		},
	}
	switch {
	case crashChaos:
		// Crash one node at the halfway barrier: close it (listener and
		// in-memory store gone), then restart it on the same address from
		// its WAL — the tail of the run measures recovery + rejoin.
		crashIdx := 0
		if *nodes > 1 {
			crashIdx = 1
		}
		cfg.Mid = func() {
			fmt.Printf("half-run: crashing node %d (in-memory state discarded)\n", crashIdx)
			servers[crashIdx].Close()
			start := time.Now()
			srv, err := serveNode(crashIdx, rawAddrs[crashIdx])
			if err != nil {
				log.Fatalf("tripled-load: crash restart: %v", err)
			}
			rec := srv.Recovery()
			fmt.Printf("crash: node %d restarted in %v (%d snapshot cells, %d tail records, %d ops replayed, %d torn bytes)\n",
				crashIdx, time.Since(start).Round(time.Millisecond),
				rec.SnapshotCells, rec.TailRecords, rec.TailOps, rec.TornBytes)
			servers[crashIdx] = srv
		}
	case *chaos != "":
		cfg.Mid = func() {
			fmt.Printf("half-run: injecting %v on node 1\n", mode)
			proxies[1].SetMode(mode)
		}
	}

	st, err := loadgen.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d clients x %d ops in %v\n\n", *clients, *ops, st.Elapsed.Round(time.Millisecond))
	fmt.Printf("%-8s %10s %12s %10s %10s %10s\n", "op", "requests", "cells/sec", "p50", "p95", "p99")
	grand := 0.0
	for _, kind := range loadgen.OpKinds {
		if len(st.Lat[kind]) == 0 {
			continue
		}
		grand += st.PerSec(kind)
		fmt.Printf("%-8s %10d %12.0f %10v %10v %10v\n",
			kind, len(st.Lat[kind]), st.PerSec(kind),
			st.Percentile(kind, 0.50).Round(time.Microsecond),
			st.Percentile(kind, 0.95).Round(time.Microsecond),
			st.Percentile(kind, 0.99).Round(time.Microsecond))
	}
	fmt.Printf("\noverall: %.0f cells+queries/sec\n", grand)
	if len(cclients) > 0 {
		failovers, down := 0, map[string]bool{}
		for _, c := range cclients {
			h := c.Health()
			failovers += h.Failovers
			for _, a := range h.Down {
				down[a] = true
			}
		}
		fmt.Printf("cluster: %d read failovers, %d nodes marked down\n", failovers, len(down))
	}
}
