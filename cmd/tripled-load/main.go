// Command tripled-load is the load generator for the tripled D4M
// service: M concurrent clients drive a mixed PUT/GET/TOPDEG workload
// against one server (an in-process one by default, or -addr for a
// remote target) and report per-op-kind throughput and latency
// percentiles — the harness for sizing the store's stripe count and the
// client's batch/pipelining parameters against the ROADMAP's
// heavy-traffic goal.
//
// Usage:
//
//	tripled-load [-addr HOST:PORT] [-clients M] [-ops N] [-batch B]
//	             [-rows N] [-mix PUT,GET,TOPDEG] [-stripes N] [-seed N]
//
// With -batch > 1 the PUT share of the workload flows through the
// pipelined BATCH path (B cells per request); -batch 1 is the classic
// one-round-trip-per-cell mode the batched protocol replaced.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/assoc"
	"repro/internal/tripled"
)

var opKinds = []string{"PUT", "GET", "TOPDEG"}

// opStats collects one client's per-kind latency samples. PUT batches
// record one sample per batch with the cell count, so throughput is
// still counted in cells.
type opStats struct {
	lat   map[string][]time.Duration
	cells map[string]int
}

func newOpStats() *opStats {
	return &opStats{lat: make(map[string][]time.Duration), cells: make(map[string]int)}
}

func (s *opStats) record(kind string, d time.Duration, n int) {
	s.lat[kind] = append(s.lat[kind], d)
	s.cells[kind] += n
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func parseMix(s string) ([3]int, error) {
	var mix [3]int
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return mix, fmt.Errorf("mix wants three comma-separated weights, got %q", s)
	}
	total := 0
	for i, p := range parts {
		w, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || w < 0 {
			return mix, fmt.Errorf("bad mix weight %q", p)
		}
		mix[i] = w
		total += w
	}
	if total == 0 {
		return mix, fmt.Errorf("mix weights sum to zero")
	}
	return mix, nil
}

func main() {
	var (
		addr    = flag.String("addr", "", "tripled server address (default: serve in-process)")
		clients = flag.Int("clients", 8, "concurrent client connections")
		ops     = flag.Int("ops", 5000, "operations per client")
		batch   = flag.Int("batch", 256, "cells per PUT batch (1 = per-cell round trips)")
		rows    = flag.Int("rows", 100000, "row keyspace size")
		mixFlag = flag.String("mix", "70,25,5", "PUT,GET,TOPDEG weights")
		stripes = flag.Int("stripes", tripled.DefaultStripes, "store stripes for the in-process server")
		topk    = flag.Int("topk", 10, "k of each TOPDEG query")
		seed    = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()
	mix, err := parseMix(*mixFlag)
	if err != nil {
		log.Fatal(err)
	}

	target := *addr
	if target == "" {
		srv, err := tripled.Serve(tripled.NewStoreStripes(*stripes), "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		target = srv.Addr()
		fmt.Printf("in-process server on %s (%d stripes)\n", target, *stripes)
	}

	total := mix[0] + mix[1] + mix[2]
	var wg sync.WaitGroup
	stats := make([]*opStats, *clients)
	errs := make(chan error, *clients)
	begin := time.Now()
	for id := 0; id < *clients; id++ {
		wg.Add(1)
		stats[id] = newOpStats()
		go func(id int, st *opStats) {
			defer wg.Done()
			c, err := tripled.Dial(target)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(*seed + int64(id)))
			row := func() string { return "ip-" + strconv.Itoa(rng.Intn(*rows)) }
			pending := make([]tripled.Cell, 0, *batch)
			flush := func() error {
				if len(pending) == 0 {
					return nil
				}
				t0 := time.Now()
				err := c.PutBatch(pending)
				st.record("PUT", time.Since(t0), len(pending))
				pending = pending[:0]
				return err
			}
			for i := 0; i < *ops; i++ {
				var err error
				switch r := rng.Intn(total); {
				case r < mix[0]:
					cell := tripled.Cell{Row: row(), Col: "packets", Val: assoc.Num(float64(rng.Intn(1 << 20)))}
					if *batch <= 1 {
						t0 := time.Now()
						err = c.Put(cell.Row, cell.Col, cell.Val)
						st.record("PUT", time.Since(t0), 1)
					} else if pending = append(pending, cell); len(pending) == *batch {
						err = flush()
					}
				case r < mix[0]+mix[1]:
					t0 := time.Now()
					if _, err = c.Get(row(), "packets"); err == tripled.ErrNotFound {
						err = nil
					}
					st.record("GET", time.Since(t0), 1)
				default:
					t0 := time.Now()
					_, err = c.TopRowsByDegree(*topk)
					st.record("TOPDEG", time.Since(t0), 1)
				}
				if err != nil {
					errs <- fmt.Errorf("client %d: %w", id, err)
					return
				}
			}
			if err := flush(); err != nil {
				errs <- fmt.Errorf("client %d: %w", id, err)
			}
		}(id, stats[id])
	}
	wg.Wait()
	elapsed := time.Since(begin)
	close(errs)
	for err := range errs {
		log.Fatal(err)
	}

	fmt.Printf("\n%d clients x %d ops in %v\n\n", *clients, *ops, elapsed.Round(time.Millisecond))
	fmt.Printf("%-8s %10s %12s %10s %10s %10s\n", "op", "requests", "cells/sec", "p50", "p95", "p99")
	grandCells := 0
	for _, kind := range opKinds {
		var all []time.Duration
		cells := 0
		for _, st := range stats {
			all = append(all, st.lat[kind]...)
			cells += st.cells[kind]
		}
		if len(all) == 0 {
			continue
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		grandCells += cells
		fmt.Printf("%-8s %10d %12.0f %10v %10v %10v\n",
			kind, len(all), float64(cells)/elapsed.Seconds(),
			percentile(all, 0.50).Round(time.Microsecond),
			percentile(all, 0.95).Round(time.Microsecond),
			percentile(all, 0.99).Round(time.Microsecond))
	}
	fmt.Printf("\noverall: %.0f cells+queries/sec\n", float64(grandCells)/elapsed.Seconds())
}
