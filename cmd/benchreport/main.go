// Command benchreport measures the window-build hot path and emits (or
// checks) the BENCH_hotpath.json baseline the perf trajectory is judged
// against: packets/sec, ns/op, and allocs/op for engine window capture,
// leaf build, hierarchical merge, and the fused netquant reduction.
//
// Usage:
//
//	benchreport [-out FILE] [-check FILE] [-quick] [-max-regress 0.20]
//
// With -out, a fresh report is written as JSON. With -check, the same
// measurements run and then gate against the committed baseline:
//
//   - allocs/op gates are absolute (machine-independent): steady-state
//     leaf build <= 8, pooled window merge <= 8.
//   - the pooled k-way merge must beat the allocate-per-level Add tree
//     (merge_speedup >= the baseline's gate, machine-independent).
//   - packets/sec metrics must not regress more than -max-regress
//     (default 20%) below the committed baseline values.
//
// CI runs `benchreport -quick -check BENCH_hotpath_quick.json
// -max-regress 0.5` (the committed quick-scale baseline, with a wide
// cross-machine margin) so a hot-path regression fails the build;
// BENCH_hotpath.json is the full-scale same-machine trajectory record.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/hypersparse"
	"repro/internal/netquant"
	"repro/internal/radiation"
	"repro/internal/stats"
	"repro/internal/telescope"
)

// Metric is one benchmark's result row.
type Metric struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
	BytesOp  float64 `json:"bytes_op"`
	// ItemsPerSec is packets/sec for window benches, entries/sec for
	// matrix benches.
	ItemsPerSec float64 `json:"items_per_sec,omitempty"`
}

// Report is the BENCH_hotpath.json schema.
type Report struct {
	Schema     string            `json:"schema"`
	Generated  string            `json:"generated"`
	GoVersion  string            `json:"go"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Quick      bool              `json:"quick"`
	Metrics    map[string]Metric `json:"metrics"`
	// MergeSpeedup is the pooled k-way merge's advantage over the
	// allocate-per-level Add tree on identical leaves (machine-relative,
	// measured in-process).
	MergeSpeedup float64 `json:"merge_speedup"`
	Gates        Gates   `json:"gates"`
	// Seed preserves the pre-refactor measurements this PR started from,
	// so the trajectory keeps its origin even as the baseline moves.
	Seed map[string]Metric `json:"seed,omitempty"`
}

// Gates are the machine-independent pass bars -check enforces.
type Gates struct {
	LeafBuildAllocsMax float64 `json:"leaf_build_allocs_max"`
	WindowMergeAllocs  float64 `json:"window_merge_allocs_max"`
	MergeSpeedupMin    float64 `json:"merge_speedup_min"`
	NetquantAllocsMax  float64 `json:"netquant_allocs_max"`
}

func defaultGates() Gates {
	return Gates{
		LeafBuildAllocsMax: 8,
		WindowMergeAllocs:  8,
		// The pooled merge's guarantee is allocation-freedom at equal or
		// better speed; the >= 2x hot-path gate (builder + merge
		// combined) lives in hypersparse's TestWindowBuildSpeedup. The
		// floor sits 10% under parity to absorb timer noise on loaded
		// CI machines.
		MergeSpeedupMin:   0.9,
		NetquantAllocsMax: 8,
	}
}

func main() {
	var (
		out        = flag.String("out", "", "write the report JSON to this file ('-' = stdout)")
		check      = flag.String("check", "", "compare against this committed baseline JSON and exit non-zero on regression")
		quick      = flag.Bool("quick", false, "small fixture for CI smoke (2^14-packet windows)")
		maxRegress = flag.Float64("max-regress", 0.20, "allowed fractional packets/sec regression vs the baseline")
	)
	flag.Parse()
	if *out == "" && *check == "" {
		*out = "-"
	}

	rep := measure(*quick)

	if *out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		buf = append(buf, '\n')
		if *out == "-" {
			os.Stdout.Write(buf)
		} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
			log.Fatal(err)
		}
	}

	if *check != "" {
		base, err := loadReport(*check)
		if err != nil {
			log.Fatalf("benchreport: load baseline: %v", err)
		}
		if errs := compare(rep, base, *maxRegress); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "FAIL:", e)
			}
			os.Exit(1)
		}
		fmt.Printf("benchreport: all gates pass against %s (merge speedup %.2fx)\n", *check, rep.MergeSpeedup)
	}
}

func loadReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// compare enforces the gates: absolute alloc budgets and the merge
// speedup from the fresh run, throughput regression vs the baseline.
func compare(fresh, base *Report, maxRegress float64) []string {
	var errs []string
	g := base.Gates
	checkAllocs := func(name string, max float64) {
		m, ok := fresh.Metrics[name]
		if !ok {
			errs = append(errs, fmt.Sprintf("metric %q missing from fresh run", name))
			return
		}
		if m.AllocsOp > max {
			errs = append(errs, fmt.Sprintf("%s: %.1f allocs/op exceeds gate %.0f", name, m.AllocsOp, max))
		}
	}
	checkAllocs("leaf_build", g.LeafBuildAllocsMax)
	checkAllocs("window_merge_pooled", g.WindowMergeAllocs)
	checkAllocs("netquant_fused", g.NetquantAllocsMax)
	if fresh.MergeSpeedup < g.MergeSpeedupMin {
		errs = append(errs, fmt.Sprintf("merge_speedup %.2fx below gate %.2fx", fresh.MergeSpeedup, g.MergeSpeedupMin))
	}
	if fresh.Quick != base.Quick {
		// Throughput is only comparable at the same fixture scale; the
		// alloc and speedup gates above are scale-robust and still ran.
		fmt.Printf("benchreport: scale mismatch (fresh quick=%v, baseline quick=%v); skipping items/s regression check\n",
			fresh.Quick, base.Quick)
		return errs
	}
	for name, bm := range base.Metrics {
		if bm.ItemsPerSec == 0 {
			continue
		}
		fm, ok := fresh.Metrics[name]
		if !ok {
			errs = append(errs, fmt.Sprintf("metric %q missing from fresh run", name))
			continue
		}
		floor := bm.ItemsPerSec * (1 - maxRegress)
		if fm.ItemsPerSec < floor {
			errs = append(errs, fmt.Sprintf("%s: %.0f items/s regressed more than %.0f%% from baseline %.0f",
				name, fm.ItemsPerSec, maxRegress*100, bm.ItemsPerSec))
		}
	}
	return errs
}

// benchEntries synthesizes window-shaped triples: heavy-tailed sources
// over 2^32, destinations inside one /8 (the darkspace).
func benchEntries(leaves, perLeaf int) [][]hypersparse.Entry {
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint32 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return uint32(rng)
	}
	hot := make([]uint32, 64)
	for i := range hot {
		hot[i] = next()
	}
	out := make([][]hypersparse.Entry, leaves)
	for l := range out {
		es := make([]hypersparse.Entry, perLeaf)
		for i := range es {
			row := next()
			if next()%4 != 0 {
				row = hot[next()%uint32(len(hot))]
			}
			es[i] = hypersparse.Entry{Row: row, Col: 0x2C000000 | next()&0x00FFFFFF, Val: 1}
		}
		out[l] = es
	}
	return out
}

func toMetric(r testing.BenchmarkResult, items int) Metric {
	m := Metric{
		NsOp:     float64(r.NsPerOp()),
		AllocsOp: float64(r.AllocsPerOp()),
		BytesOp:  float64(r.AllocedBytesPerOp()),
	}
	if items > 0 && r.T > 0 {
		m.ItemsPerSec = float64(items) * float64(r.N) / r.T.Seconds()
	}
	return m
}

func measure(quick bool) *Report {
	leafSize := 1 << 12
	leaves := 16
	nv := 1 << 16
	sources := 40000
	if quick {
		leafSize = 1 << 10
		leaves = 8
		nv = 1 << 14
		sources = 10000
	}
	rep := &Report{
		Schema:     "bench_hotpath/v1",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
		Metrics:    map[string]Metric{},
		Gates:      defaultGates(),
	}

	es := benchEntries(leaves, leafSize)

	// Steady-state leaf build: one retained builder, entries appended and
	// compiled per leaf.
	builder := hypersparse.NewBuilder(leafSize)
	rep.Metrics["leaf_build"] = toMetric(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, e := range es[i%len(es)] {
				builder.Add(e.Row, e.Col, e.Val)
			}
			builder.Build()
		}
	}), leafSize)

	mats := make([]*hypersparse.Matrix, len(es))
	totalEntries := 0
	for i, entries := range es {
		mats[i] = hypersparse.FromEntries(entries)
		totalEntries += mats[i].NNZ()
	}

	// Pooled k-way merge vs the allocate-per-level Add tree.
	var dst hypersparse.Matrix
	hypersparse.SumInto(&dst, mats...)
	pooled := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hypersparse.SumInto(&dst, mats...)
		}
	})
	rep.Metrics["window_merge_pooled"] = toMetric(pooled, totalEntries)
	addTree := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cur := append([]*hypersparse.Matrix(nil), mats...)
			for len(cur) > 1 {
				next := cur[:0:0]
				for j := 0; j < len(cur); j += 2 {
					if j+1 == len(cur) {
						next = append(next, cur[j])
					} else {
						next = append(next, hypersparse.Add(cur[j], cur[j+1]))
					}
				}
				cur = next
			}
		}
	})
	rep.Metrics["window_merge_addtree"] = toMetric(addTree, totalEntries)
	if pooled.NsPerOp() > 0 {
		rep.MergeSpeedup = float64(addTree.NsPerOp()) / float64(pooled.NsPerOp())
	}

	// Fused Table II reduction on the merged window.
	window := hypersparse.HierSum(mats, 0)
	netquant.Compute(window) // warm the column-scan pool
	rep.Metrics["netquant_fused"] = toMetric(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			netquant.Compute(window)
		}
	}), window.NNZ())

	// Engine windows: cold (fresh telescope per window, the historical
	// BenchmarkEngineWindow shape) and steady (telescope reused).
	cfg := radiation.DefaultConfig()
	cfg.NumSources = sources
	cfg.ZM = stats.PaperZM(1 << 14)
	pop, err := radiation.NewPopulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range []int{1, 8} {
		w := w
		rep.Metrics[fmt.Sprintf("engine_window_cold_w%d", w)] = toMetric(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tel := telescope.New(cfg.Darkspace, "bench-key", telescope.WithLeafSize(leafSize))
				capture(b, tel, pop, nv, w)
			}
		}), nv)
		tel := telescope.New(cfg.Darkspace, "bench-key", telescope.WithLeafSize(leafSize))
		capture(nil, tel, pop, nv, w) // warm anonymization caches
		rep.Metrics[fmt.Sprintf("engine_window_steady_w%d", w)] = toMetric(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				capture(b, tel, pop, nv, w)
			}
		}), nv)
	}
	return rep
}

func capture(b *testing.B, tel *telescope.Telescope, pop *radiation.Population, nv, workers int) {
	w, err := tel.CaptureWindowEngine(context.Background(),
		pop.TelescopeStream(4.5, time.Unix(0, 0)), nv, workers, 0)
	if err != nil {
		if b != nil {
			b.Fatal(err)
		}
		log.Fatal(err)
	}
	if w.NV != nv {
		if b != nil {
			b.Fatalf("short window: %d", w.NV)
		}
		log.Fatalf("short window: %d", w.NV)
	}
}
