// Command benchreport measures the window-build hot path — or, with
// -study, the whole-study scheduler and correlation kernels; or, with
// -tripled, the replicated store's load phases — and emits (or checks)
// the committed JSON baselines the perf trajectory is judged against.
//
// Usage:
//
//	benchreport [-study|-tripled] [-out FILE] [-check FILE] [-quick] [-max-regress 0.20]
//
// Without -study the report is the BENCH_hotpath.json schema:
// packets/sec, ns/op, and allocs/op for engine window capture, leaf
// build, hierarchical merge, and the fused netquant reduction. With
// -out, a fresh report is written as JSON. With -check, the same
// measurements run and then gate against the committed baseline:
//
//   - allocs/op gates are absolute (machine-independent): steady-state
//     leaf build <= 8, pooled window merge <= 8.
//   - the pooled k-way merge must beat the allocate-per-level Add tree
//     (merge_speedup >= the baseline's gate, machine-independent).
//   - packets/sec metrics must not regress more than -max-regress
//     (default 20%) below the committed baseline values. Below 4 CPUs
//     this comparison is noise-dominated (a shared single-core box
//     swings past any sane margin run to run), so it is annotated and
//     skipped there — the machine-independent alloc and speedup gates
//     always run.
//   - the slab ingest front-end gates are required in the baseline
//     (-check fails, never skips, when one is absent): drop-heavy
//     filtered window captures (filter_window_w1/w8) must stay within
//     filter_window_allocs_max — far under one alloc per packet — and
//     the steady-state batch paths (pcap_batch_read, a warm
//     Reader.NextBatch; cryptopan_batch_warm, an all-hit
//     Cached.AnonymizeBatch slab) must be allocation-free (gate 0).
//
// With -study the report is the BENCH_study.json schema: whole-study
// wall clock for the StudyWorkers=1 serial oracle and the parallel
// scheduler (with engine packets/sec), their speedup, the report
// graph's fit_wall phase (the Fig 7/8 GridSearch2 sweeps at
// ReportWorkers=1 vs the pool-scheduled fan-out, with fits/sec), and
// ns/op + allocs/op for the frozen correlation kernels (Figure 4's
// peak and Figures 5-8's temporal series). Its gates:
//
//   - the correlation kernels must be allocation-free at steady state
//     (machine-independent, always enforced);
//   - the parallel study must be >= 2x the serial oracle — enforced
//     only on machines with at least study_speedup_min_cpus CPUs,
//     since the fan-out merely interleaves on fewer cores; below that
//     the report records the measured value and annotates the skip
//     (the numcpu field makes the context machine-readable);
//   - the pool-scheduled fits must be >= 2x the serial sweep, with the
//     same CPU floor (fit_speedup_min_cpus) and annotation policy —
//     and must render fig7_fig8 byte-identical to the serial oracle,
//     which is checked unconditionally on every -study run.
//
// With -tripled the report is the BENCH_tripled.json schema: the
// shared loadgen workload run four ways — one in-memory server, one
// durable (WAL-on, interval sync) server, a 3-node R=2
// consistent-hash cluster, and the same cluster with one replica
// blackholed at the halfway barrier — with cells+queries/sec and
// p50/p95/p99 latency per op kind and phase. Its gates, all required
// in the baseline (-check fails, not skips, when any is absent):
//
//   - replication_overhead (single-node PUT throughput over 3-node,
//     both measured in the same run, so machine-relative) must stay
//     under the baseline's replication_overhead_max;
//   - wal_overhead (in-memory single-node PUT throughput over the
//     durable node's, same run) must stay under wal_overhead_max —
//     durability is not allowed to tax ingest more than ~1.5x;
//   - the blackholed phase must finish every op AND record at least
//     failovers_min non-primary reads — proof the degraded path ran.
//
// The quick -study fixture measures an 8-snapshot study (the paper's
// realistic 5-snapshot study caps the ideal 4-worker speedup at ~2.5x),
// so its study gate floor is 4 CPUs and fires on a standard 4-vCPU CI
// runner; the full-scale report keeps the 5-snapshot study and its
// 6-CPU floor as the trajectory record.
//
// Every report records gomaxprocs and numcpu so cross-machine numbers
// (e.g. multi-worker metrics measured on a 1-CPU container, where w8
// can lose to w1) can be read in context. -check additionally fails —
// for either schema — when the runner has >= 4 CPUs but the baseline
// was recorded with fewer: such a baseline's CPU-floored gates can
// never fire and its throughput floors describe the wrong machine
// class, so it must be regenerated where the check runs.
//
// CI therefore regenerates the quick baselines on its own runner
// (`benchreport -quick -out` / `-study -quick -out`) and -checks
// against those, failing the build if any speedup gate reports an
// annotated skip — the gates actually run, on honest multi-core
// numbers. The committed BENCH_*_quick.json files are the
// container-recorded references for same-machine work, and
// BENCH_hotpath.json / BENCH_study.json are the full-scale trajectory
// records; the stale-baseline rule above keeps any of them from being
// checked against a machine class they were not measured on.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/correlate"
	"repro/internal/cryptopan"
	"repro/internal/faultinject"
	"repro/internal/hypersparse"
	"repro/internal/ipaddr"
	"repro/internal/netquant"
	"repro/internal/pcap"
	"repro/internal/radiation"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/telescope"
	"repro/internal/tripled"
	"repro/internal/tripled/cluster"
	"repro/internal/tripled/loadgen"
)

// Metric is one benchmark's result row.
type Metric struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
	BytesOp  float64 `json:"bytes_op"`
	// ItemsPerSec is packets/sec for window benches, entries/sec for
	// matrix benches, cells+queries/sec for tripled load phases.
	ItemsPerSec float64 `json:"items_per_sec,omitempty"`
	// Latency percentiles, tripled schema only: the load generator
	// reports distribution, not just throughput, because failover cost
	// lives entirely in the tail.
	P50Ns float64 `json:"p50_ns,omitempty"`
	P95Ns float64 `json:"p95_ns,omitempty"`
	P99Ns float64 `json:"p99_ns,omitempty"`
}

// Report is the BENCH_hotpath.json / BENCH_study.json schema.
type Report struct {
	Schema     string            `json:"schema"`
	Generated  string            `json:"generated"`
	GoVersion  string            `json:"go"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	NumCPU     int               `json:"numcpu"`
	Quick      bool              `json:"quick"`
	Metrics    map[string]Metric `json:"metrics"`
	// MergeSpeedup is the pooled k-way merge's advantage over the
	// allocate-per-level Add tree on identical leaves (machine-relative,
	// measured in-process). Hot-path schema only.
	MergeSpeedup float64 `json:"merge_speedup,omitempty"`
	// StudySpeedup is the parallel scheduler's whole-study advantage
	// over the StudyWorkers=1 serial oracle. Study schema only; read it
	// together with numcpu — on a 1-CPU machine it hovers near 1x by
	// construction.
	StudySpeedup float64 `json:"study_speedup,omitempty"`
	// FitSpeedup is the report graph's fit-phase advantage: the
	// pool-scheduled per-(snapshot, band) GridSearch2 sweeps vs the
	// ReportWorkers=1 serial oracle. Study schema only; same numcpu
	// caveat as StudySpeedup.
	FitSpeedup float64 `json:"fit_speedup,omitempty"`
	// ReplicationOverhead is the 3-node R=2 cluster's PUT cost over the
	// single-node baseline (single cells/sec divided by cluster
	// cells/sec), measured in-process in the same run so it is
	// machine-relative. Tripled schema only.
	ReplicationOverhead float64 `json:"replication_overhead,omitempty"`
	// Failovers counts reads the blackholed-replica phase served from a
	// non-primary node — proof the failover path actually ran, not just
	// that the workload finished. Tripled schema only.
	Failovers int `json:"failovers,omitempty"`
	// WALOverhead is the durable (WAL-on, interval sync) single node's
	// PUT cost over the in-memory single node (memory cells/sec divided
	// by durable cells/sec), both measured in the same run so it is
	// machine-relative. Tripled schema only.
	WALOverhead float64 `json:"wal_overhead,omitempty"`
	Gates       Gates   `json:"gates"`
	// Seed preserves the pre-refactor measurements this PR started from,
	// so the trajectory keeps its origin even as the baseline moves.
	Seed map[string]Metric `json:"seed,omitempty"`
}

// Gates are the machine-independent pass bars -check enforces.
type Gates struct {
	LeafBuildAllocsMax float64 `json:"leaf_build_allocs_max,omitempty"`
	WindowMergeAllocs  float64 `json:"window_merge_allocs_max,omitempty"`
	MergeSpeedupMin    float64 `json:"merge_speedup_min,omitempty"`
	NetquantAllocsMax  float64 `json:"netquant_allocs_max,omitempty"`
	// Study gates: the correlation kernels' absolute allocation budget
	// (always enforced) and the whole-study speedup floor (enforced only
	// on machines with at least StudySpeedupMinCPUs CPUs, annotated
	// otherwise — a 1-CPU runner cannot measure fan-out).
	CorrelateAllocsMax  float64 `json:"correlate_allocs_max"`
	StudySpeedupMin     float64 `json:"study_speedup_min,omitempty"`
	StudySpeedupMinCPUs int     `json:"study_speedup_min_cpus,omitempty"`
	// Fit-phase gates: the pool-scheduled Fig 7/8 sweep's floor over
	// the serial oracle, CPU-floored like the study speedup.
	FitSpeedupMin     float64 `json:"fit_speedup_min,omitempty"`
	FitSpeedupMinCPUs int     `json:"fit_speedup_min_cpus,omitempty"`
	// Tripled cluster gates: how much replication is allowed to cost
	// (machine-relative, both sides measured in the same run) and how
	// many failovers the blackholed phase must record for the run to
	// count as having exercised the degraded path at all. Both are
	// required in a tripled baseline — compare fails, not skips, when
	// they are absent, so a truncated baseline cannot pass vacuously.
	ReplicationOverheadMax float64 `json:"replication_overhead_max,omitempty"`
	FailoversMin           int     `json:"failovers_min,omitempty"`
	// WALOverheadMax caps what durability may cost ingest: the WAL-on
	// (interval sync) single node vs the in-memory single node, measured
	// in the same run. Required in a tripled baseline like the cluster
	// gates above — compare fails, not skips, when it is absent.
	WALOverheadMax float64 `json:"wal_overhead_max,omitempty"`
	// Ingest front-end gates (hotpath schema), pointer-typed because
	// zero is a meaningful bar — the batch decode and warm batch
	// anonymization are allocation-free by contract — so an absent gate
	// must read as "baseline predates the slab front-end" and fail the
	// check, never pass vacuously as <= 0.
	//
	// FilterWindowAllocsMax bounds a whole drop-heavy window capture
	// (filter_window_w1/w8): the bar is far above the fixed per-capture
	// cost (goroutines, channels, result structs) and far below one
	// alloc per packet, so it trips exactly when filtering or mapping
	// regresses to per-packet allocation.
	FilterWindowAllocsMax *float64 `json:"filter_window_allocs_max,omitempty"`
	// PcapBatchAllocsMax bounds steady-state pcap_batch_read (a warm
	// Reader.NextBatch call): 0.
	PcapBatchAllocsMax *float64 `json:"pcap_batch_allocs_max,omitempty"`
	// CryptopanBatchAllocsMax bounds cryptopan_batch_warm (an all-hit
	// Cached.AnonymizeBatch slab): 0.
	CryptopanBatchAllocsMax *float64 `json:"cryptopan_batch_allocs_max,omitempty"`
}

func gate(v float64) *float64 { return &v }

func defaultGates() Gates {
	return Gates{
		LeafBuildAllocsMax: 8,
		WindowMergeAllocs:  8,
		// The pooled merge's guarantee is allocation-freedom at equal or
		// better speed; the >= 2x hot-path gate (builder + merge
		// combined) lives in hypersparse's TestWindowBuildSpeedup. The
		// floor sits 10% under parity to absorb timer noise on loaded
		// CI machines.
		MergeSpeedupMin:   0.9,
		NetquantAllocsMax: 8,
		// 2048 is ~10x the fixed per-capture cost and ~8x under one
		// alloc per packet at the quick scale (2^14), so it separates
		// the two regimes cleanly at either fixture size.
		FilterWindowAllocsMax:   gate(2048),
		PcapBatchAllocsMax:      gate(0),
		CryptopanBatchAllocsMax: gate(0),
	}
}

func defaultStudyGates(quick bool) Gates {
	g := Gates{
		CorrelateAllocsMax: 0,
		// The >= 2x whole-study bar of the scheduler's acceptance
		// criteria. The full-scale CPU floor is 6, not 4: that report
		// measures the realistic 5-snapshot study, whose ideal speedup
		// on 4-5 CPUs is only ~2.5x (5 snapshot jobs, one worker runs
		// two), leaving no margin for a noisy shared runner. From 6
		// CPUs every snapshot runs concurrently and the ideal is
		// ~4-5x, so 2x has real headroom.
		StudySpeedupMin:     2,
		StudySpeedupMinCPUs: 6,
		// The fit jobs are pure CPU and plentiful (every snapshot
		// contributes ~a dozen bands), so unlike the 5-snapshot study
		// wall, 4 CPUs already give the >= 2x bar real headroom.
		FitSpeedupMin:     2,
		FitSpeedupMinCPUs: 4,
	}
	if quick {
		// The quick fixture measures an 8-snapshot study (see
		// studyConfig) precisely so the gate can fire on the 4-vCPU CI
		// runner: 8 jobs on 4 workers is ~4x ideal, so >= 2x needs only
		// ~50% parallel efficiency — the same margin core's
		// TestStudySpeedup is built on.
		g.StudySpeedupMinCPUs = 4
	}
	return g
}

func main() {
	var (
		out        = flag.String("out", "", "write the report JSON to this file ('-' = stdout)")
		check      = flag.String("check", "", "compare against this committed baseline JSON and exit non-zero on regression")
		quick      = flag.Bool("quick", false, "small fixture for CI smoke (2^14-packet windows)")
		study      = flag.Bool("study", false, "measure the whole-study scheduler and correlation kernels (BENCH_study.json schema) instead of the window hot path")
		tripled    = flag.Bool("tripled", false, "measure the tripled store single-node vs 3-node-cluster vs blackholed-failover load phases (BENCH_tripled.json schema)")
		maxRegress = flag.Float64("max-regress", 0.20, "allowed fractional packets/sec regression vs the baseline")
	)
	flag.Parse()
	if *out == "" && *check == "" {
		*out = "-"
	}
	if *study && *tripled {
		log.Fatal("benchreport: -study and -tripled are separate schemas; pick one")
	}

	var rep *Report
	switch {
	case *study:
		rep = measureStudy(*quick)
	case *tripled:
		rep = measureTripled(*quick)
	default:
		rep = measure(*quick)
	}

	if *out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		buf = append(buf, '\n')
		if *out == "-" {
			os.Stdout.Write(buf)
		} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
			log.Fatal(err)
		}
	}

	if *check != "" {
		base, err := loadReport(*check)
		if err != nil {
			log.Fatalf("benchreport: load baseline: %v", err)
		}
		if errs := compare(rep, base, *maxRegress); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "FAIL:", e)
			}
			os.Exit(1)
		}
		if *study {
			fmt.Printf("benchreport: all gates pass against %s (study speedup %.2fx, fit speedup %.2fx on %d CPUs)\n",
				*check, rep.StudySpeedup, rep.FitSpeedup, rep.NumCPU)
		} else if *tripled {
			fmt.Printf("benchreport: all gates pass against %s (replication overhead %.2fx, WAL overhead %.2fx, %d failovers under blackhole)\n",
				*check, rep.ReplicationOverhead, rep.WALOverhead, rep.Failovers)
		} else {
			fmt.Printf("benchreport: all gates pass against %s (merge speedup %.2fx)\n", *check, rep.MergeSpeedup)
		}
	}
}

func loadReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// compare enforces the gates: absolute alloc budgets and the in-process
// speedups from the fresh run, throughput regression vs the baseline.
func compare(fresh, base *Report, maxRegress float64) []string {
	var errs []string
	if fresh.Schema != base.Schema {
		return []string{fmt.Sprintf("schema mismatch: fresh %q vs baseline %q", fresh.Schema, base.Schema)}
	}
	// A baseline recorded on fewer CPUs than the speedup gates' floor is
	// a trap: checked on a multi-core runner, its CPU-floored gates and
	// per-machine throughput floors describe a machine class the runner
	// is not in, so the gates that matter most either skip forever or
	// pass vacuously. A gate that can never fire is a bug — fail loudly
	// and demand a baseline regenerated where the check runs.
	const minGateCPUs = 4
	if fresh.NumCPU >= minGateCPUs && base.NumCPU < minGateCPUs {
		regen := "benchreport -out FILE"
		switch fresh.Schema {
		case studySchema:
			regen = "benchreport -study -out FILE"
		case tripledSchema:
			regen = "benchreport -tripled -out FILE"
		}
		errs = append(errs, fmt.Sprintf(
			"stale baseline: recorded at %d CPUs but this runner has %d (>= %d); "+
				"regenerate it on this machine class (%s) so the CPU-floored "+
				"speedup gates can actually fire",
			base.NumCPU, fresh.NumCPU, minGateCPUs, regen))
	}
	g := base.Gates
	checkAllocs := func(name string, max float64) {
		m, ok := fresh.Metrics[name]
		if !ok {
			errs = append(errs, fmt.Sprintf("metric %q missing from fresh run", name))
			return
		}
		if m.AllocsOp > max {
			errs = append(errs, fmt.Sprintf("%s: %.1f allocs/op exceeds gate %.0f", name, m.AllocsOp, max))
		}
	}
	if fresh.Schema == tripledSchema {
		// Fail, don't skip, when the baseline lacks the cluster or WAL
		// gates: a BENCH_tripled.json without them would turn this check
		// into a throughput-only comparison that passes while failover or
		// durability is broken.
		if g.ReplicationOverheadMax == 0 || g.FailoversMin == 0 || g.WALOverheadMax == 0 {
			errs = append(errs, fmt.Sprintf(
				"baseline %q is missing the tripled gates (replication_overhead_max=%v, failovers_min=%v, wal_overhead_max=%v); "+
					"regenerate it with benchreport -tripled -out FILE",
				base.Schema, g.ReplicationOverheadMax, g.FailoversMin, g.WALOverheadMax))
		} else {
			if fresh.ReplicationOverhead > g.ReplicationOverheadMax {
				errs = append(errs, fmt.Sprintf("replication_overhead %.2fx exceeds gate %.2fx",
					fresh.ReplicationOverhead, g.ReplicationOverheadMax))
			}
			if fresh.Failovers < g.FailoversMin {
				errs = append(errs, fmt.Sprintf(
					"blackholed phase recorded %d failovers, gate wants >= %d: the degraded path did not run",
					fresh.Failovers, g.FailoversMin))
			}
			if fresh.WALOverhead > g.WALOverheadMax {
				errs = append(errs, fmt.Sprintf("wal_overhead %.2fx exceeds gate %.2fx: durability crept onto the ingest hot path",
					fresh.WALOverhead, g.WALOverheadMax))
			}
		}
	} else if fresh.Schema == studySchema {
		checkAllocs("correlate_peak", g.CorrelateAllocsMax)
		checkAllocs("correlate_temporal", g.CorrelateAllocsMax)
		if fresh.NumCPU >= g.StudySpeedupMinCPUs {
			if fresh.StudySpeedup < g.StudySpeedupMin {
				errs = append(errs, fmt.Sprintf("study_speedup %.2fx below gate %.2fx at %d CPUs",
					fresh.StudySpeedup, g.StudySpeedupMin, fresh.NumCPU))
			}
		} else {
			fmt.Printf("benchreport: %d CPUs < %d required to measure study fan-out; "+
				"study_speedup gate annotated and skipped (measured %.2fx)\n",
				fresh.NumCPU, g.StudySpeedupMinCPUs, fresh.StudySpeedup)
		}
		if fresh.NumCPU >= g.FitSpeedupMinCPUs {
			if fresh.FitSpeedup < g.FitSpeedupMin {
				errs = append(errs, fmt.Sprintf("fit_speedup %.2fx below gate %.2fx at %d CPUs",
					fresh.FitSpeedup, g.FitSpeedupMin, fresh.NumCPU))
			}
		} else if g.FitSpeedupMinCPUs > 0 {
			fmt.Printf("benchreport: %d CPUs < %d required to measure fit fan-out; "+
				"fit_speedup gate annotated and skipped (measured %.2fx)\n",
				fresh.NumCPU, g.FitSpeedupMinCPUs, fresh.FitSpeedup)
		}
	} else {
		checkAllocs("leaf_build", g.LeafBuildAllocsMax)
		checkAllocs("window_merge_pooled", g.WindowMergeAllocs)
		checkAllocs("netquant_fused", g.NetquantAllocsMax)
		if fresh.MergeSpeedup < g.MergeSpeedupMin {
			errs = append(errs, fmt.Sprintf("merge_speedup %.2fx below gate %.2fx", fresh.MergeSpeedup, g.MergeSpeedupMin))
		}
		// The slab front-end gates are required: a hotpath baseline
		// without them predates the batched ingest path, and letting the
		// check skip would mean the zero-alloc contracts are never
		// enforced. Fail and demand a regenerated baseline.
		checkRequired := func(name string, max *float64, field string) {
			if max == nil {
				errs = append(errs, fmt.Sprintf(
					"baseline is missing required gate %q (predates the slab ingest front-end); "+
						"regenerate it with benchreport -out FILE", field))
				return
			}
			checkAllocs(name, *max)
		}
		checkRequired("filter_window_w1", g.FilterWindowAllocsMax, "filter_window_allocs_max")
		checkRequired("filter_window_w8", g.FilterWindowAllocsMax, "filter_window_allocs_max")
		checkRequired("pcap_batch_read", g.PcapBatchAllocsMax, "pcap_batch_allocs_max")
		checkRequired("cryptopan_batch_warm", g.CryptopanBatchAllocsMax, "cryptopan_batch_allocs_max")
	}
	if fresh.Quick != base.Quick {
		// Throughput is only comparable at the same fixture scale; the
		// alloc and speedup gates above are scale-robust and still ran.
		fmt.Printf("benchreport: scale mismatch (fresh quick=%v, baseline quick=%v); skipping items/s regression check\n",
			fresh.Quick, base.Quick)
		return errs
	}
	if fresh.NumCPU < minGateCPUs {
		// On a box below the gate floor (a shared single-core container)
		// run-to-run throughput swings past any sane regression margin,
		// so an items/s comparison measures the neighbors, not the code.
		// Same policy as the speedup gates: annotate and skip, loudly —
		// the alloc and in-process speedup gates above are
		// machine-independent and still ran.
		fmt.Printf("benchreport: %d CPUs < %d required for stable throughput measurement; "+
			"items/s regression check annotated and skipped\n", fresh.NumCPU, minGateCPUs)
		return errs
	}
	for name, bm := range base.Metrics {
		if bm.ItemsPerSec == 0 {
			continue
		}
		fm, ok := fresh.Metrics[name]
		if !ok {
			errs = append(errs, fmt.Sprintf("metric %q missing from fresh run", name))
			continue
		}
		floor := bm.ItemsPerSec * (1 - maxRegress)
		if fm.ItemsPerSec < floor {
			errs = append(errs, fmt.Sprintf("%s: %.0f items/s regressed more than %.0f%% from baseline %.0f",
				name, fm.ItemsPerSec, maxRegress*100, bm.ItemsPerSec))
		}
	}
	return errs
}

// benchEntries synthesizes window-shaped triples: heavy-tailed sources
// over 2^32, destinations inside one /8 (the darkspace).
func benchEntries(leaves, perLeaf int) [][]hypersparse.Entry {
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint32 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return uint32(rng)
	}
	hot := make([]uint32, 64)
	for i := range hot {
		hot[i] = next()
	}
	out := make([][]hypersparse.Entry, leaves)
	for l := range out {
		es := make([]hypersparse.Entry, perLeaf)
		for i := range es {
			row := next()
			if next()%4 != 0 {
				row = hot[next()%uint32(len(hot))]
			}
			es[i] = hypersparse.Entry{Row: row, Col: 0x2C000000 | next()&0x00FFFFFF, Val: 1}
		}
		out[l] = es
	}
	return out
}

func toMetric(r testing.BenchmarkResult, items int) Metric {
	m := Metric{
		NsOp:     float64(r.NsPerOp()),
		AllocsOp: float64(r.AllocsPerOp()),
		BytesOp:  float64(r.AllocedBytesPerOp()),
	}
	if items > 0 && r.T > 0 {
		m.ItemsPerSec = float64(items) * float64(r.N) / r.T.Seconds()
	}
	return m
}

func measure(quick bool) *Report {
	leafSize := 1 << 12
	leaves := 16
	nv := 1 << 16
	sources := 40000
	if quick {
		leafSize = 1 << 10
		leaves = 8
		nv = 1 << 14
		sources = 10000
	}
	rep := &Report{
		Schema:     "bench_hotpath/v1",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      quick,
		Metrics:    map[string]Metric{},
		Gates:      defaultGates(),
	}

	es := benchEntries(leaves, leafSize)

	// Steady-state leaf build: one retained builder, entries appended and
	// compiled per leaf.
	builder := hypersparse.NewBuilder(leafSize)
	rep.Metrics["leaf_build"] = toMetric(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, e := range es[i%len(es)] {
				builder.Add(e.Row, e.Col, e.Val)
			}
			builder.Build()
		}
	}), leafSize)

	mats := make([]*hypersparse.Matrix, len(es))
	totalEntries := 0
	for i, entries := range es {
		mats[i] = hypersparse.FromEntries(entries)
		totalEntries += mats[i].NNZ()
	}

	// Pooled k-way merge vs the allocate-per-level Add tree.
	var dst hypersparse.Matrix
	hypersparse.SumInto(&dst, mats...)
	pooled := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hypersparse.SumInto(&dst, mats...)
		}
	})
	rep.Metrics["window_merge_pooled"] = toMetric(pooled, totalEntries)
	addTree := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cur := append([]*hypersparse.Matrix(nil), mats...)
			for len(cur) > 1 {
				next := cur[:0:0]
				for j := 0; j < len(cur); j += 2 {
					if j+1 == len(cur) {
						next = append(next, cur[j])
					} else {
						next = append(next, hypersparse.Add(cur[j], cur[j+1]))
					}
				}
				cur = next
			}
		}
	})
	rep.Metrics["window_merge_addtree"] = toMetric(addTree, totalEntries)
	if pooled.NsPerOp() > 0 {
		rep.MergeSpeedup = float64(addTree.NsPerOp()) / float64(pooled.NsPerOp())
	}

	// Fused Table II reduction on the merged window.
	window := hypersparse.HierSum(mats, 0)
	netquant.Compute(window) // warm the column-scan pool
	rep.Metrics["netquant_fused"] = toMetric(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			netquant.Compute(window)
		}
	}), window.NNZ())

	// Engine windows: cold (fresh telescope per window, the historical
	// BenchmarkEngineWindow shape) and steady (telescope reused).
	cfg := radiation.DefaultConfig()
	cfg.NumSources = sources
	cfg.ZM = stats.PaperZM(1 << 14)
	pop, err := radiation.NewPopulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range []int{1, 8} {
		w := w
		rep.Metrics[fmt.Sprintf("engine_window_cold_w%d", w)] = toMetric(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tel := telescope.New(cfg.Darkspace, "bench-key", telescope.WithLeafSize(leafSize))
				capture(b, tel, pop, nv, w)
			}
		}), nv)
		tel := telescope.New(cfg.Darkspace, "bench-key", telescope.WithLeafSize(leafSize))
		capture(nil, tel, pop, nv, w) // warm anonymization caches
		rep.Metrics[fmt.Sprintf("engine_window_steady_w%d", w)] = toMetric(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				capture(b, tel, pop, nv, w)
			}
		}), nv)
	}

	// Drop-heavy filtered windows: the same engine capture against a
	// population polluted with 15% bogon sources, so the in-shard filter
	// path (evaluate, count the drop, compact the slab) carries real
	// weight. Items are raw packets (NV + Dropped) — the quantity the
	// filter actually processes.
	fcfg := radiation.DefaultConfig()
	fcfg.NumSources = sources
	fcfg.ZM = stats.PaperZM(1 << 14)
	fcfg.BogonRate = 0.15
	fpop, err := radiation.NewPopulation(fcfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range []int{1, 8} {
		w := w
		tel := telescope.New(fcfg.Darkspace, "bench-key", telescope.WithLeafSize(leafSize))
		raw := captureFiltered(nil, tel, fpop, nv, w) // warm caches; also pins the fixture's raw count
		rep.Metrics[fmt.Sprintf("filter_window_w%d", w)] = toMetric(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				captureFiltered(b, tel, fpop, nv, w)
			}
		}), raw)
	}

	// Wire-format slab decode: a pcap capture synthesized once from the
	// population, decoded through a warm Reader at steady state —
	// NextBatch (the slab path, zero-alloc by contract) vs ReadPacket
	// (the per-packet oracle).
	pcapPackets := 1 << 14
	if quick {
		pcapPackets = 1 << 12
	}
	var pcapBuf bytes.Buffer
	pw, err := pcap.NewWriter(&pcapBuf)
	if err != nil {
		log.Fatal(err)
	}
	pst := pop.TelescopeStream(4.5, time.Unix(0, 0))
	var pkt pcap.Packet
	for i := 0; i < pcapPackets && pst.Next(&pkt); i++ {
		if err := pw.WritePacket(&pkt); err != nil {
			log.Fatal(err)
		}
	}
	pw.Flush()
	pcapData := pcapBuf.Bytes()
	newReader := func() *pcap.Reader {
		r, err := pcap.NewReader(bytes.NewReader(pcapData))
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	slab := make([]pcap.Packet, 512)
	br := newReader()
	if n, _ := br.NextBatch(slab); n != len(slab) {
		log.Fatalf("benchreport: pcap warmup decoded %d packets", n)
	}
	rep.Metrics["pcap_batch_read"] = toMetric(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n, _ := br.NextBatch(slab)
			if n == 0 {
				b.StopTimer()
				br = newReader()
				b.StartTimer()
			}
		}
	}), len(slab))
	pr := newReader()
	rep.Metrics["pcap_read_packet"] = toMetric(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var p pcap.Packet
		for i := 0; i < b.N; i++ {
			if err := pr.ReadPacket(&p); err != nil {
				b.StopTimer()
				pr = newReader()
				b.StartTimer()
			}
		}
	}), 1)

	// Batched CryptoPAN: one 4096-address slab of the population's
	// packet endpoints (heavy-tailed, prefix-clustered — the telescope's
	// real shape). Cold pays the prefix-shared AES walks every op; warm
	// is the all-hit memo path and must be allocation-free.
	addrs := make([]ipaddr.Addr, 0, 4096)
	ast := pop.TelescopeStream(4.5, time.Unix(0, 0))
	for len(addrs) < cap(addrs) && ast.Next(&pkt) {
		addrs = append(addrs, pkt.Src, pkt.Dst)
	}
	work := make([]ipaddr.Addr, len(addrs))
	anon := cryptopan.NewFromPassphrase("bench-key")
	anon.Anonymize(0) // build the top-16 flip table outside the loop
	rep.Metrics["cryptopan_batch_cold"] = toMetric(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(work, addrs)
			anon.AnonymizeBatch(work)
		}
	}), len(addrs))
	cached := cryptopan.NewCached(cryptopan.NewFromPassphrase("bench-key"))
	copy(work, addrs)
	cached.AnonymizeBatch(work) // fill the memo: every later slab is all-hit
	rep.Metrics["cryptopan_batch_warm"] = toMetric(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(work, addrs)
			cached.AnonymizeBatch(work)
		}
	}), len(addrs))
	return rep
}

// captureFiltered is capture against a drop-heavy population; it
// returns the raw packet count (NV + Dropped) the filter processed.
func captureFiltered(b *testing.B, tel *telescope.Telescope, pop *radiation.Population, nv, workers int) int {
	w, err := tel.CaptureWindowEngine(context.Background(),
		pop.TelescopeStream(4.5, time.Unix(0, 0)), nv, workers, 0)
	if err != nil {
		if b != nil {
			b.Fatal(err)
		}
		log.Fatal(err)
	}
	if w.NV != nv {
		if b != nil {
			b.Fatalf("short filtered window: %d", w.NV)
		}
		log.Fatalf("short filtered window: %d", w.NV)
	}
	return w.NV + w.Dropped
}

func capture(b *testing.B, tel *telescope.Telescope, pop *radiation.Population, nv, workers int) {
	w, err := tel.CaptureWindowEngine(context.Background(),
		pop.TelescopeStream(4.5, time.Unix(0, 0)), nv, workers, 0)
	if err != nil {
		if b != nil {
			b.Fatal(err)
		}
		log.Fatal(err)
	}
	if w.NV != nv {
		if b != nil {
			b.Fatalf("short window: %d", w.NV)
		}
		log.Fatalf("short window: %d", w.NV)
	}
}

// studySchema marks BENCH_study.json reports.
const studySchema = "bench_study/v1"

// tripledSchema marks BENCH_tripled.json reports.
const tripledSchema = "bench_tripled/v1"

// defaultTripledGates: replication at R=2 writes every PUT twice and
// pays a quorum wait, so ~2-3x PUT overhead vs the single node is the
// honest in-process cost; 6x leaves timer-noise headroom while still
// catching a pathological cluster client. The failover floor is 1:
// the blackholed run must have actually served reads from a
// non-primary replica, or it measured nothing. The WAL cap is 1.5x:
// interval sync means durability costs one buffered write() per
// request off the ack path, so anything past ~1.5x signals the log
// has crept back onto the hot path (per-record fsync, allocation in
// the framer, serialization under the stripe lock).
func defaultTripledGates() Gates {
	return Gates{
		ReplicationOverheadMax: 6,
		FailoversMin:           1,
		WALOverheadMax:         1.5,
	}
}

// measureTripled runs the loadgen workload four ways — one in-memory
// node, one durable (WAL-on, interval sync) node, a 3-node R=2
// cluster, and the same cluster with one replica blackholed at the
// halfway barrier — and reports throughput plus latency percentiles
// for each, the single-vs-cluster PUT overhead, the WAL ingest
// overhead, and the failover count from the degraded phase. Any
// workload error is fatal: with R=2 and one injected fault the
// cluster is obligated to finish.
func measureTripled(quick bool) *Report {
	lcfg := loadgen.Config{
		Clients: 8,
		Ops:     8000,
		Batch:   128,
		Rows:    100000,
		Mix:     [3]int{70, 25, 5},
		TopK:    10,
		Seed:    1,
	}
	if quick {
		lcfg.Clients = 4
		lcfg.Ops = 1500
		lcfg.Batch = 64
		lcfg.Rows = 20000
	}
	rep := &Report{
		Schema:     tripledSchema,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      quick,
		Metrics:    map[string]Metric{},
		Gates:      defaultTripledGates(),
	}

	servers := func(n int) []string {
		addrs := make([]string, n)
		for i := range addrs {
			srv, err := tripled.Serve(tripled.NewStore(), "127.0.0.1:0")
			if err != nil {
				log.Fatal(err)
			}
			// Servers live until process exit; each phase gets fresh ones so
			// TOPDEG cost does not compound across phases.
			addrs[i] = srv.Addr()
		}
		return addrs
	}
	record := func(phase string, st *loadgen.Stats) {
		for _, kind := range loadgen.OpKinds {
			if len(st.Lat[kind]) == 0 {
				continue
			}
			rep.Metrics[fmt.Sprintf("tripled_%s_%s", phase, strings.ToLower(kind))] = Metric{
				ItemsPerSec: st.PerSec(kind),
				P50Ns:       float64(st.Percentile(kind, 0.50).Nanoseconds()),
				P95Ns:       float64(st.Percentile(kind, 0.95).Nanoseconds()),
				P99Ns:       float64(st.Percentile(kind, 0.99).Nanoseconds()),
			}
		}
	}

	// Phase 1: single node.
	single := lcfg
	addr := servers(1)[0]
	single.Dial = func(int) (tripled.Conn, error) { return tripled.Dial(addr) }
	st, err := loadgen.Run(single)
	if err != nil {
		log.Fatalf("benchreport: single-node load phase: %v", err)
	}
	record("single", st)

	// Phase 1b: single durable node — same workload against a WAL-backed
	// server at the interval sync policy (the production default: the
	// write() lands before the ack, fsync rides the ticker). The server
	// is closed and its log deleted after the phase; only the overhead
	// ratio vs phase 1 is kept.
	walDir, err := os.MkdirTemp("", "benchreport-wal-")
	if err != nil {
		log.Fatal(err)
	}
	walSrv, err := tripled.Serve(tripled.NewStore(), "127.0.0.1:0",
		tripled.WithDataDir(walDir), tripled.WithWALSyncPolicy("interval"))
	if err != nil {
		log.Fatalf("benchreport: durable node: %v", err)
	}
	walOn := lcfg
	walAddr := walSrv.Addr()
	walOn.Dial = func(int) (tripled.Conn, error) { return tripled.Dial(walAddr) }
	stw, err := loadgen.Run(walOn)
	if err != nil {
		log.Fatalf("benchreport: WAL-on load phase: %v", err)
	}
	record("walon", stw)
	if w := stw.PerSec("PUT"); w > 0 {
		rep.WALOverhead = st.PerSec("PUT") / w
	}
	walSrv.Close()
	os.RemoveAll(walDir)

	// Phase 2: clean 3-node R=2 cluster.
	clean := lcfg
	spec := strings.Join(servers(3), ",") + ";replicas=2"
	clean.Dial = func(int) (tripled.Conn, error) { return cluster.Dial(spec) }
	st2, err := loadgen.Run(clean)
	if err != nil {
		log.Fatalf("benchreport: 3-node load phase: %v", err)
	}
	record("cluster3", st2)
	if c3 := st2.PerSec("PUT"); c3 > 0 {
		rep.ReplicationOverhead = st.PerSec("PUT") / c3
	}

	// Phase 3: 3-node cluster with node 1 blackholed at the halfway
	// barrier — the tail of the run measures detection plus failover.
	degraded := lcfg
	var proxies []*faultinject.Proxy
	var paddrs []string
	for _, a := range servers(3) {
		p, err := faultinject.New(a)
		if err != nil {
			log.Fatal(err)
		}
		proxies = append(proxies, p)
		paddrs = append(paddrs, p.Addr())
	}
	dspec := strings.Join(paddrs, ",") + ";replicas=2;io_timeout=500ms;retries=2"
	var mu sync.Mutex
	var cclients []*cluster.Client
	degraded.Dial = func(int) (tripled.Conn, error) {
		c, err := cluster.Dial(dspec)
		if err == nil {
			mu.Lock()
			cclients = append(cclients, c)
			mu.Unlock()
		}
		return c, err
	}
	degraded.Mid = func() { proxies[1].SetMode(faultinject.Blackhole) }
	st3, err := loadgen.Run(degraded)
	if err != nil {
		log.Fatalf("benchreport: blackholed-failover load phase: %v", err)
	}
	record("failover", st3)
	for _, c := range cclients {
		rep.Failovers += c.Health().Failovers
	}
	return rep
}

// studyConfig is the measurement scale for -study: the root benchmark
// harness's study shape at full scale, QuickConfig at -quick. Engine
// workers are pinned to 1 so study_speedup isolates the scheduler's
// fan-out from the engine's sharding.
func studyConfig(quick bool) core.Config {
	if quick {
		cfg := core.QuickConfig()
		cfg.Workers = 1
		// Eight snapshots instead of the paper's five, for the same
		// reason core's TestStudySpeedup measures an 8-snapshot fixture:
		// snapshot captures dominate the wall clock, and 5 jobs on 4
		// workers cap the ideal speedup at ~2.5x — too close to the 2x
		// bar for a shared CI runner. At 8 jobs the ideal is ~4x, so the
		// quick-scale study gate can be enforced from 4 CPUs (see
		// defaultStudyGates). The full-scale report below keeps the
		// realistic paper study as the trajectory record.
		cfg.SnapshotTimes = nil
		for m := 2; m < 10; m++ {
			cfg.SnapshotTimes = append(cfg.SnapshotTimes, cfg.StudyStart.AddDate(0, m, 14))
		}
		return cfg
	}
	cfg := core.DefaultConfig()
	cfg.NV = 1 << 16
	cfg.LeafSize = 1 << 12
	cfg.Radiation.NumSources = 40000
	cfg.Radiation.ZM = stats.PaperZM(1 << 14)
	cfg.Radiation.BrightLog2 = 8
	cfg.Workers = 1
	return cfg
}

// measureStudy times the whole study on the serial oracle and the
// parallel scheduler, then benchmarks the frozen correlation kernels on
// the resulting tables.
func measureStudy(quick bool) *Report {
	rep := &Report{
		Schema:     studySchema,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      quick,
		Metrics:    map[string]Metric{},
		Gates:      defaultStudyGates(quick),
	}
	cfg := studyConfig(quick)

	run := func(studyWorkers int) (*core.Result, time.Duration) {
		c := cfg
		c.StudyWorkers = studyWorkers
		p, err := core.New(c)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		res, err := p.Run()
		if err != nil {
			log.Fatal(err)
		}
		return res, time.Since(t0)
	}
	_, serialWall := run(1)
	// The acceptance bar is phrased at >= 4 workers; use more when the
	// machine has them. On fewer CPUs this still exercises the real
	// scheduler (interleaved), so the recorded speedup is the honest
	// fan-out-overhead number, not a silent serial rerun.
	parWorkers := runtime.GOMAXPROCS(0)
	if parWorkers < 4 {
		parWorkers = 4
	}
	res, parWall := run(parWorkers)
	pkts := len(res.Windows) * cfg.NV
	rep.Metrics["study_serial"] = Metric{
		NsOp:        float64(serialWall.Nanoseconds()),
		ItemsPerSec: float64(pkts) / serialWall.Seconds(),
	}
	rep.Metrics["study_parallel"] = Metric{
		NsOp:        float64(parWall.Nanoseconds()),
		ItemsPerSec: float64(pkts) / parWall.Seconds(),
	}
	rep.StudySpeedup = float64(serialWall) / float64(parWall)

	// fit_wall: the report graph's Fig 7/8 GridSearch2 sweeps — the
	// dominant post-capture cost — on the serial oracle vs the
	// pool-scheduled per-(snapshot, band) fan-out. The frozen study is
	// prebuilt so the phase isolates pure fit compute, and the
	// parallel render is checked byte-identical to the serial oracle
	// on every run (the parity half of the fit gate, not CPU-floored).
	frozen := res.Frozen()
	fitJobs := 0
	for si := 0; si < frozen.Snapshots(); si++ {
		fitJobs += len(frozen.SweepBands(si, cfg.MinBandSources))
	}
	renderFits := func(workers int) string {
		var b strings.Builder
		if err := report.WriteTSV(&b, res.ReportWith(workers), report.Fig7Fig8); err != nil {
			log.Fatal(err)
		}
		return b.String()
	}
	fitSerial := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res.ReportWith(1).Fig7And8()
		}
	})
	fitPar := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res.ReportWith(parWorkers).Fig7And8()
		}
	})
	rep.Metrics["fit_wall_serial"] = toMetric(fitSerial, fitJobs)
	rep.Metrics["fit_wall_parallel"] = toMetric(fitPar, fitJobs)
	if fitPar.NsPerOp() > 0 {
		rep.FitSpeedup = float64(fitSerial.NsPerOp()) / float64(fitPar.NsPerOp())
	}
	if serial, par := renderFits(1), renderFits(parWorkers); serial != par {
		log.Fatalf("benchreport: fig7_fig8 render at ReportWorkers=%d diverges from the serial oracle", parWorkers)
	}

	// One-time interning cost of the study's tables: the serial
	// insertion-order interner (the oracle) vs the pooled rank interner
	// the pipeline runs. Items are the row keys interned per build, so
	// both carry a throughput floor for the regression check.
	freezeKeys := 0
	for _, m := range res.Study.Months {
		freezeKeys += len(m.Table.RowKeys())
	}
	for _, s := range res.Study.Snapshots {
		freezeKeys += len(s.Sources.RowKeys())
	}
	rep.Metrics["correlate_freeze"] = toMetric(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			correlate.Freeze(res.Study)
		}
	}), freezeKeys)
	rep.Metrics["correlate_freeze_parallel"] = toMetric(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			correlate.FreezeParallel(res.Study, 0)
		}
	}), freezeKeys)

	// Steady-state Figure 4 and Figure 5-8 kernels: warm Into
	// destinations, so allocs/op must read 0.
	f := res.Frozen()
	mi, err := f.SameMonthIndex(0)
	if err != nil {
		log.Fatal(err)
	}
	dst := f.PeakCorrelation(0, mi)
	rep.Metrics["correlate_peak"] = toMetric(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = f.PeakInto(dst, 0, mi)
		}
	}), 0)
	band := f.Bands(0)[0] // the faintest band holds the most sources: worst case
	var series correlate.Series
	if err := f.TemporalInto(&series, 0, band); err != nil {
		log.Fatal(err)
	}
	rep.Metrics["correlate_temporal"] = toMetric(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := f.TemporalInto(&series, 0, band); err != nil {
				b.Fatal(err)
			}
		}
	}), 0)
	return rep
}
