// Command correlate runs the full observatory/outpost correlation study
// and prints a human-readable report: the dataset inventory (Table I),
// per-snapshot Zipf-Mandelbrot fits (Figure 3), the same-month
// brightness law (Figure 4), the model comparison on the temporal decay
// (Figure 5), and the per-band modified-Cauchy parameters (Figures 7-8).
//
// The artifact tables are the unified report renderer's TSV, aligned
// through a tabwriter — the same bytes cmd/figures writes to disk —
// while the Figure 3 and Figure 5 sections stay hand-written summaries
// (fit parameters, not the full curves).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	var (
		scale         = flag.String("scale", "default", "preset: quick or default")
		nv            = flag.Int("nv", 0, "override telescope window size NV")
		sources       = flag.Int("sources", 0, "override population size")
		seed          = flag.Int64("seed", 0, "override random seed")
		studyWorkers  = flag.Int("study-workers", 0, "study-level fan-out: months/snapshots in flight (1 = serial oracle, 0 = GOMAXPROCS)")
		reportWorkers = flag.Int("report-workers", 0, "report-graph fit fan-out (1 = serial oracle, 0 = GOMAXPROCS)")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	if *scale == "quick" {
		cfg = core.QuickConfig()
	}
	if *nv > 0 {
		cfg.NV = *nv
	}
	if *sources > 0 {
		cfg.Radiation.NumSources = *sources
	}
	if *seed != 0 {
		cfg.Radiation.Seed = *seed
	}
	cfg.StudyWorkers = *studyWorkers
	cfg.ReportWorkers = *reportWorkers

	pipe, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := pipe.Run()
	if err != nil {
		log.Fatal(err)
	}
	g := res.Report()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer tw.Flush()

	section := func(title string, id report.ArtifactID) {
		fmt.Fprintf(tw, "%s\n", title)
		if err := report.WriteTSV(tw, g, id); err != nil {
			log.Fatal(err)
		}
	}

	section("== Dataset inventory (Table I) ==", report.Table1)

	fmt.Fprintf(tw, "\n== Source-packet degree distribution (Figure 3) ==\n")
	fmt.Fprintf(tw, "snapshot\tZM alpha\tZM delta\tresidual\t(paper: alpha 1.76, delta 3.93)\n")
	for _, s := range res.Fig3() {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.4f\t\n", s.Label, s.Alpha, s.Delta, s.Residual)
	}

	fmt.Fprintln(tw)
	section("== Same-month correlation vs brightness (Figure 4) ==", report.Fig4)

	fmt.Fprintf(tw, "\n== Temporal decay model comparison (Figure 5) ==\n")
	series, fits, err := res.Fig5()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(tw, "snapshot %s, band 2^%d (%d sources)\n", series.Snapshot, series.Band, series.Sources)
	fmt.Fprintf(tw, "model\tparameters\tresidual (||.||_1/2)\n")
	for _, name := range []string{"modified-cauchy", "cauchy", "gaussian"} {
		fit := fits[name]
		switch m := fit.Model.(type) {
		case stats.ModifiedCauchy:
			fmt.Fprintf(tw, "%s\talpha=%.2f beta=%.2f\t%.4f\n", name, m.Alpha, m.Beta, fit.Residual)
		case stats.Cauchy:
			fmt.Fprintf(tw, "%s\tgamma=%.2f\t%.4f\n", name, m.Gamma, fit.Residual)
		case stats.Gaussian:
			fmt.Fprintf(tw, "%s\tsigma=%.2f\t%.4f\n", name, m.Sigma, fit.Residual)
		}
	}

	fmt.Fprintln(tw)
	section("== Modified-Cauchy parameters by brightness (Figures 7 and 8) ==", report.Fig7Fig8)
}
