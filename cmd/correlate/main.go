// Command correlate runs the full observatory/outpost correlation study
// and prints a human-readable report: the dataset inventory (Table I),
// per-snapshot Zipf-Mandelbrot fits (Figure 3), the same-month
// brightness law (Figure 4), the model comparison on the temporal decay
// (Figure 5), and the per-band modified-Cauchy parameters (Figures 7-8).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	var (
		scale        = flag.String("scale", "default", "preset: quick or default")
		nv           = flag.Int("nv", 0, "override telescope window size NV")
		sources      = flag.Int("sources", 0, "override population size")
		seed         = flag.Int64("seed", 0, "override random seed")
		studyWorkers = flag.Int("study-workers", 0, "study-level fan-out: months/snapshots in flight (1 = serial oracle, 0 = GOMAXPROCS)")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	if *scale == "quick" {
		cfg = core.QuickConfig()
	}
	if *nv > 0 {
		cfg.NV = *nv
	}
	if *sources > 0 {
		cfg.Radiation.NumSources = *sources
	}
	if *seed != 0 {
		cfg.Radiation.Seed = *seed
	}
	cfg.StudyWorkers = *studyWorkers

	pipe, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := pipe.Run()
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer tw.Flush()

	fmt.Fprintf(tw, "== Dataset inventory (Table I) ==\n")
	fmt.Fprintf(tw, "GN start\tdays\tGN sources\tCAIDA start\tduration\tpackets\tsources\n")
	for _, r := range res.TableI() {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%s\t%d\t%d\n",
			r.GNStart, r.GNDays, r.GNSources, r.CAIDAStart, r.CAIDADuration, r.CAIDAPackets, r.CAIDASources)
	}

	fmt.Fprintf(tw, "\n== Source-packet degree distribution (Figure 3) ==\n")
	fmt.Fprintf(tw, "snapshot\tZM alpha\tZM delta\tresidual\t(paper: alpha 1.76, delta 3.93)\n")
	for _, s := range res.Fig3() {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.4f\t\n", s.Label, s.Alpha, s.Delta, s.Residual)
	}

	fmt.Fprintf(tw, "\n== Same-month correlation vs brightness (Figure 4) ==\n")
	fig4, err := res.Fig4()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(tw, "snapshot\td\tsources\tfraction\tmodel log2(d)/log2(sqrt(NV))\n")
	for _, s := range fig4 {
		for i, p := range s.Points {
			fmt.Fprintf(tw, "%s\t%g\t%d\t%.3f\t%.3f\n", s.Label, p.D, p.Sources, p.Fraction, s.Model[i])
		}
	}

	fmt.Fprintf(tw, "\n== Temporal decay model comparison (Figure 5) ==\n")
	series, fits, err := res.Fig5()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(tw, "snapshot %s, band 2^%d (%d sources)\n", series.Snapshot, series.Band, series.Sources)
	fmt.Fprintf(tw, "model\tparameters\tresidual (||.||_1/2)\n")
	for _, name := range []string{"modified-cauchy", "cauchy", "gaussian"} {
		fit := fits[name]
		switch m := fit.Model.(type) {
		case stats.ModifiedCauchy:
			fmt.Fprintf(tw, "%s\talpha=%.2f beta=%.2f\t%.4f\n", name, m.Alpha, m.Beta, fit.Residual)
		case stats.Cauchy:
			fmt.Fprintf(tw, "%s\tgamma=%.2f\t%.4f\n", name, m.Gamma, fit.Residual)
		case stats.Gaussian:
			fmt.Fprintf(tw, "%s\tsigma=%.2f\t%.4f\n", name, m.Sigma, fit.Residual)
		}
	}

	fmt.Fprintf(tw, "\n== Modified-Cauchy parameters by brightness (Figures 7 and 8) ==\n")
	fmt.Fprintf(tw, "snapshot\td\tsources\talpha\tbeta\t1-month drop\n")
	for _, sweep := range res.Fig7And8() {
		for _, f := range sweep {
			fmt.Fprintf(tw, "%s\t%g\t%d\t%.2f\t%.2f\t%.0f%%\n",
				f.Snapshot, f.D, f.Sources, f.Alpha, f.Beta, 100*f.Drop)
		}
	}
}
