// Package repro reproduces Kepner et al., "Temporal Correlation of
// Internet Observatories and Outposts" (IPDPS Workshops / GrAPL 2022,
// arXiv:2203.10230): the correlation of unsolicited Internet traffic
// sources seen by a darkspace telescope and a honeyfarm outpost.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// map); cmd/ holds the executables that regenerate every table and
// figure, examples/ holds runnable walkthroughs, and bench_test.go at
// this root is the benchmark harness with one benchmark per paper
// artifact plus the design ablations.
package repro
